//! The execution engine: lower a [`Plan`] onto the best simulation
//! paths, run it on the worker pool, reassemble deterministically.
//!
//! The engine is the single funnel between "describe a measurement"
//! ([`crate::plan`]) and "numbers came out" ([`ResultSet`]). Lowering
//! picks one execution path per job:
//!
//! * **replay** — transposed, SWAR-vectorized second-level replay over
//!   a materialized first-level pattern stream
//!   ([`crate::runner::simulate_replay_transposed`]); chosen for
//!   fusion-eligible catalog schemes whose first level maps to a
//!   [`StreamKey`]. Jobs group by the *width-erased* fold class of that
//!   key ([`StreamKey::fold_key`]): an entire width × automaton grid
//!   column shares one batch, the engine derives **one** stream per
//!   (trace, fold class) — at the batch's widest member width
//!   ([`TraceStore::get_pattern_stream`]) — and every member's
//!   bit-sliced PHT bank updates in the same walk, each member masking
//!   patterns down to its own width. Automaton ablations and width
//!   variants alike never re-walk the BHT or even re-read the stream.
//!   The kernel body is selectable ([`ExecOptions::simd`], default the
//!   `TLABP_SIMD` environment variable). Bit-identical to every other
//!   path and on by default; [`Job::replay`] opts a job out.
//! * **packed** — monomorphized [`AnyPredictor`] over the packed
//!   conditional-branch stream ([`crate::runner::simulate_packed`]);
//!   chosen for catalog schemes whenever no context switches are
//!   simulated. Packed-path jobs that share a trace are additionally
//!   **fused**: the engine groups them by [`TraceKey`] and runs each
//!   group as batched single passes over the pc-interned stream
//!   ([`crate::runner::simulate_fused`]), amortizing stream decode and
//!   dispatch across the batch. Bit-identical to per-cell execution and
//!   on by default; [`Job::fuse`] opts a job out.
//! * **full-trace** — [`AnyPredictor`] over the full event trace
//!   ([`crate::runner::simulate`]); chosen when context switches are
//!   simulated (the packed stream carries no traps or instruction
//!   counts).
//! * **dyn** — predictors outside the catalog, registered in
//!   [`tlabp_core::registry`] and referenced by name, run behind
//!   [`AnyPredictor::Dyn`] on either stream. One virtual dispatch per
//!   call, paid only by externally-registered schemes.
//! * **reference** — a boxed `dyn BranchPredictor` over the full event
//!   trace, bypassing every fast path. Never chosen by lowering; jobs
//!   opt in ([`Job::reference_path`]) for differential testing and as
//!   the throughput harness baseline.
//!
//! Execution runs every cell on a [`SweepPool`] (idle workers pull the
//! next cell as they finish) after pre-generating each distinct trace
//! the plan needs exactly once. Reassembly restores plan order, so the
//! output is a pure function of the plan: pool size and thread
//! scheduling never leak into a [`ResultSet`] (asserted by the
//! 1-vs-8-worker determinism test).
//!
//! # Example
//!
//! ```no_run
//! use tlabp_core::config::SchemeConfig;
//! use tlabp_sim::engine::execute;
//! use tlabp_sim::plan::{Job, Plan};
//! use tlabp_sim::suite::TraceStore;
//! use tlabp_workloads::Benchmark;
//!
//! let plan: Plan = Benchmark::ALL
//!     .iter()
//!     .map(|b| Job::scheme(SchemeConfig::pag(12), b))
//!     .collect();
//! let results = execute(&plan, &TraceStore::new());
//! assert_eq!(results.len(), Benchmark::ALL.len());
//! ```

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::OnceLock;

use tlabp_core::any::AnyPredictor;
use tlabp_core::config::SchemeConfig;
use tlabp_core::pht::LANES_PER_WORD;
use tlabp_core::predictor::BranchPredictor;
use tlabp_core::registry::{self, DynBuilder};
use tlabp_core::schemes::Pag;
use tlabp_core::simd::SimdMode;
use tlabp_core::target_cache::{FetchOutcome, TargetCache};
use tlabp_trace::{BranchClass, Trace};
use tlabp_workloads::DataSet;

use crate::json::{Json, WireError};
use crate::metrics::{BenchmarkAccuracy, FetchStats, MissBreakdown, SuiteResult};
use crate::plan::{Job, MetricSet, Plan, PredictorSpec, TargetCacheSpec, TraceKey};
use crate::pool::SweepPool;
use crate::runner::{
    replay_stream_key, simulate, simulate_fused, simulate_packed, simulate_replay_transposed,
    simulate_replay_transposed_streamed, FoldKey, SimConfig, SimResult, StreamKey,
};
use crate::stream::stream_bytes_from_env;
use crate::suite::TraceStore;

/// Everything a job produced when it was measurable.
#[derive(Debug, Clone, PartialEq)]
pub struct JobMetrics {
    /// The accuracy counters (always computed).
    pub sim: SimResult,
    /// Misprediction attribution, when requested and the predictor is
    /// PAg-structured.
    pub miss_breakdown: Option<MissBreakdown>,
    /// Fetch-path statistics, when requested.
    pub fetch: Option<FetchStats>,
}

/// The outcome of one job.
#[derive(Debug, Clone, PartialEq)]
pub enum JobOutcome {
    /// The job ran; metrics attached.
    Measured(JobMetrics),
    /// The job could not be measured (e.g. a profiled scheme on a
    /// benchmark without a training set — the paper's "NA" cells).
    Skipped {
        /// Why the job was skipped.
        reason: String,
    },
}

impl JobOutcome {
    /// The accuracy in `[0, 1]`, if measured.
    #[must_use]
    pub fn accuracy(&self) -> Option<f64> {
        match self {
            JobOutcome::Measured(m) => Some(m.sim.accuracy()),
            JobOutcome::Skipped { .. } => None,
        }
    }

    /// The full metrics, if measured.
    #[must_use]
    pub fn metrics(&self) -> Option<&JobMetrics> {
        match self {
            JobOutcome::Measured(m) => Some(m),
            JobOutcome::Skipped { .. } => None,
        }
    }

    /// The outcome as a wire-format JSON value. Every metric field is an
    /// exact integer counter, so the encoding is lossless — decoded
    /// outcomes compare equal to the originals, which is what lets the
    /// service promise bit-identical streamed results.
    #[must_use]
    pub fn to_json(&self) -> Json {
        match self {
            JobOutcome::Skipped { reason } => {
                Json::object(vec![("skipped", Json::Str(reason.clone()))])
            }
            JobOutcome::Measured(m) => {
                let sim = Json::object(vec![
                    ("scheme", Json::Str(m.sim.scheme.clone())),
                    ("predictions", Json::UInt(m.sim.predictions)),
                    ("correct", Json::UInt(m.sim.correct)),
                    ("context_switches", Json::UInt(m.sim.context_switches)),
                ]);
                let miss_breakdown = match &m.miss_breakdown {
                    None => Json::Null,
                    Some(b) => Json::object(vec![
                        ("bht_miss", Json::UInt(b.bht_miss)),
                        ("weak_pattern", Json::UInt(b.weak_pattern)),
                        ("interference", Json::UInt(b.interference)),
                        ("noise", Json::UInt(b.noise)),
                    ]),
                };
                let fetch = match &m.fetch {
                    None => Json::Null,
                    Some(f) => Json::object(vec![
                        ("branches", Json::UInt(f.branches)),
                        ("correct_path", Json::UInt(f.correct_path)),
                        ("no_bubble_taken", Json::UInt(f.no_bubble_taken)),
                        ("squashes", Json::UInt(f.squashes)),
                        ("return_target_misses", Json::UInt(f.return_target_misses)),
                    ]),
                };
                Json::object(vec![(
                    "measured",
                    Json::object(vec![
                        ("sim", sim),
                        ("miss_breakdown", miss_breakdown),
                        ("fetch", fetch),
                    ]),
                )])
            }
        }
    }

    /// Decodes an outcome from its [`JobOutcome::to_json`] encoding.
    ///
    /// # Errors
    ///
    /// Fails on missing or mistyped fields, or a value that is neither
    /// `{"skipped":...}` nor `{"measured":...}`.
    pub fn from_json(json: &Json) -> Result<JobOutcome, WireError> {
        let count = |node: &Json, key: &str| -> Result<u64, WireError> {
            node.field(key)?
                .as_u64()
                .ok_or_else(|| WireError::new(format!("{key} must be an unsigned integer")))
        };
        if let Some(reason) = json.get("skipped") {
            let reason = reason
                .as_str()
                .ok_or_else(|| WireError::new("skipped must carry a reason string"))?;
            return Ok(JobOutcome::Skipped { reason: reason.to_owned() });
        }
        let measured = json
            .get("measured")
            .ok_or_else(|| WireError::new("outcome needs a \"skipped\" or \"measured\" field"))?;
        let sim_json = measured.field("sim")?;
        let sim = SimResult {
            scheme: sim_json
                .field("scheme")?
                .as_str()
                .ok_or_else(|| WireError::new("scheme must be a string"))?
                .to_owned(),
            predictions: count(sim_json, "predictions")?,
            correct: count(sim_json, "correct")?,
            context_switches: count(sim_json, "context_switches")?,
        };
        let breakdown_json = measured.field("miss_breakdown")?;
        let miss_breakdown = if breakdown_json.is_null() {
            None
        } else {
            Some(MissBreakdown {
                bht_miss: count(breakdown_json, "bht_miss")?,
                weak_pattern: count(breakdown_json, "weak_pattern")?,
                interference: count(breakdown_json, "interference")?,
                noise: count(breakdown_json, "noise")?,
            })
        };
        let fetch_json = measured.field("fetch")?;
        let fetch = if fetch_json.is_null() {
            None
        } else {
            Some(FetchStats {
                branches: count(fetch_json, "branches")?,
                correct_path: count(fetch_json, "correct_path")?,
                no_bubble_taken: count(fetch_json, "no_bubble_taken")?,
                squashes: count(fetch_json, "squashes")?,
                return_target_misses: count(fetch_json, "return_target_misses")?,
            })
        };
        Ok(JobOutcome::Measured(JobMetrics { sim, miss_breakdown, fetch }))
    }
}

/// Version tag of the serialized result format
/// ([`ResultSet::to_json_string`]); rejected on mismatch, like
/// [`PLAN_WIRE_VERSION`](crate::plan::PLAN_WIRE_VERSION).
pub const RESULT_WIRE_VERSION: u64 = 1;

/// The outcomes of a plan, in plan order.
#[derive(Debug, Clone, PartialEq)]
pub struct ResultSet {
    rows: Vec<(Job, JobOutcome)>,
}

impl ResultSet {
    /// Reassembles a result set from a plan and its outcomes in plan
    /// order — the client side of the wire protocol, where outcomes
    /// arrive as indexed frames and the jobs come from the plan the
    /// caller already holds.
    ///
    /// # Panics
    ///
    /// Panics if the counts disagree (callers validate frame counts
    /// before reassembly).
    #[must_use]
    pub fn from_outcomes(plan: &Plan, outcomes: Vec<JobOutcome>) -> ResultSet {
        assert_eq!(plan.len(), outcomes.len(), "one outcome per plan job");
        ResultSet { rows: plan.jobs().iter().cloned().zip(outcomes).collect() }
    }

    /// The outcomes in plan order.
    pub fn outcomes(&self) -> impl Iterator<Item = &JobOutcome> {
        self.rows.iter().map(|(_, outcome)| outcome)
    }

    /// The result set as its canonical wire document:
    /// `{"version":1,"plan_hash":"<16 hex>","outcomes":[...]}`.
    ///
    /// The `plan_hash` ties the document to the plan that produced it
    /// ([`Plan::wire_hash`]); the jobs themselves are not repeated —
    /// whoever holds the results holds the plan. Rendering is canonical
    /// (compact, fixed field order), so equal result sets serialize
    /// byte-identically and bit-identity can be checked with a plain
    /// file compare.
    #[must_use]
    pub fn to_json_string(&self) -> String {
        let plan: Plan = self.rows.iter().map(|(job, _)| job.clone()).collect();
        Json::object(vec![
            ("version", Json::UInt(RESULT_WIRE_VERSION)),
            ("plan_hash", Json::Str(plan.wire_hash_hex())),
            ("outcomes", Json::Array(self.rows.iter().map(|(_, o)| o.to_json()).collect())),
        ])
        .render()
    }

    /// Decodes a result set serialized by [`ResultSet::to_json_string`],
    /// re-attaching the jobs of `plan`.
    ///
    /// # Errors
    ///
    /// Fails on malformed JSON, a version other than
    /// [`RESULT_WIRE_VERSION`], a `plan_hash` that does not match
    /// `plan` (the document describes some other plan's results), an
    /// outcome count different from the plan's job count, or any
    /// outcome that does not decode.
    pub fn from_json_str(text: &str, plan: &Plan) -> Result<ResultSet, WireError> {
        let json = Json::parse(text)?;
        let version = json
            .field("version")?
            .as_u64()
            .ok_or_else(|| WireError::new("version must be an integer"))?;
        if version != RESULT_WIRE_VERSION {
            return Err(WireError::new(format!(
                "unsupported result version {version} (this build speaks {RESULT_WIRE_VERSION})"
            )));
        }
        let hash = json
            .field("plan_hash")?
            .as_str()
            .ok_or_else(|| WireError::new("plan_hash must be a string"))?;
        if hash != plan.wire_hash_hex() {
            return Err(WireError::new(format!(
                "plan hash mismatch: results are for {hash}, plan is {}",
                plan.wire_hash_hex()
            )));
        }
        let outcomes_json = json
            .field("outcomes")?
            .as_array()
            .ok_or_else(|| WireError::new("outcomes must be an array"))?;
        if outcomes_json.len() != plan.len() {
            return Err(WireError::new(format!(
                "outcome count {} does not match plan job count {}",
                outcomes_json.len(),
                plan.len()
            )));
        }
        let outcomes = outcomes_json
            .iter()
            .map(JobOutcome::from_json)
            .collect::<Result<Vec<JobOutcome>, WireError>>()?;
        Ok(ResultSet::from_outcomes(plan, outcomes))
    }
    /// Number of rows (equal to the plan's job count).
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the plan had no jobs.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Iterates `(job, outcome)` pairs in plan order.
    pub fn iter(&self) -> impl Iterator<Item = (&Job, &JobOutcome)> {
        self.rows.iter().map(|(job, outcome)| (job, outcome))
    }

    /// The outcome of the `index`-th job.
    #[must_use]
    pub fn outcome(&self, index: usize) -> &JobOutcome {
        &self.rows[index].1
    }

    /// Per-job accuracies in plan order (`None` for skipped jobs).
    #[must_use]
    pub fn accuracies(&self) -> Vec<Option<f64>> {
        self.rows.iter().map(|(_, outcome)| outcome.accuracy()).collect()
    }

    /// Reassembles consecutive jobs into per-predictor
    /// [`SuiteResult`]s: a new suite starts whenever the job label
    /// changes (or a benchmark repeats within the current suite). A plan
    /// built by [`Plan::suites`] yields exactly one suite per
    /// configuration, each with one row per benchmark in
    /// [`Benchmark::ALL`](tlabp_workloads::Benchmark::ALL) order.
    #[must_use]
    pub fn suites(&self) -> Vec<SuiteResult> {
        let mut suites: Vec<SuiteResult> = Vec::new();
        for (job, outcome) in &self.rows {
            let label = job.label();
            let row = benchmark_row(job, outcome);
            match suites.last_mut() {
                Some(suite)
                    if suite.scheme == label
                        && !suite.rows.iter().any(|r| r.benchmark == row.benchmark) =>
                {
                    suite.rows.push(row);
                }
                _ => suites.push(SuiteResult { scheme: label, rows: vec![row] }),
            }
        }
        suites
    }
}

impl<'a> IntoIterator for &'a ResultSet {
    type Item = (&'a Job, &'a JobOutcome);
    type IntoIter = std::iter::Map<
        std::slice::Iter<'a, (Job, JobOutcome)>,
        fn(&'a (Job, JobOutcome)) -> (&'a Job, &'a JobOutcome),
    >;

    fn into_iter(self) -> Self::IntoIter {
        self.rows.iter().map(|(job, outcome)| (job, outcome))
    }
}

fn benchmark_row(job: &Job, outcome: &JobOutcome) -> BenchmarkAccuracy {
    let benchmark = job.trace.benchmark;
    match outcome {
        JobOutcome::Measured(m) => BenchmarkAccuracy {
            benchmark: benchmark.name().to_owned(),
            kind: benchmark.kind().into(),
            accuracy: Some(m.sim.accuracy()),
            context_switches: m.sim.context_switches,
            predictions: m.sim.predictions,
        },
        JobOutcome::Skipped { .. } => BenchmarkAccuracy {
            benchmark: benchmark.name().to_owned(),
            kind: benchmark.kind().into(),
            accuracy: None,
            context_switches: 0,
            predictions: 0,
        },
    }
}

/// Execution-phase toggles for [`execute_with`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecOptions {
    /// Run the parallel prefetch barrier (phase 1) before any simulation
    /// cell: every distinct trace form and pattern stream the plan needs
    /// is generated/derived/loaded as its own pool task up front. On by
    /// default; turning it off restores the lazy path where the first
    /// cell to touch a form pays for it while sibling workers idle behind
    /// the slot's `OnceLock` — kept reachable as the cold-start benchmark
    /// baseline and for the determinism suite's prefetch-vs-lazy case.
    pub prefetch: bool,
    /// Which body of the transposed replay kernel executes replay
    /// batches. Defaults to the `TLABP_SIMD` environment variable
    /// (itself defaulting to runtime feature detection); the bench
    /// harness and the differential suites force specific bodies here
    /// without mutating process environment. Every body is
    /// bit-identical, so this is a throughput knob, never a results
    /// knob.
    pub simd: SimdMode,
    /// Intra-batch replay parallelism: whether (and how far) one
    /// transposed replay batch splits into sub-batches scheduled as
    /// independent pool tasks, each walking the same cached pattern
    /// stream over a disjoint subset of the batch's members. Defaults to
    /// the `TLABP_SPLIT` environment variable. Member outcomes are
    /// independent of batch composition (pinned by the batch-invariance
    /// and determinism suites), so — like `simd` — this is a throughput
    /// knob, never a results knob.
    pub split: SplitPolicy,
}

impl Default for ExecOptions {
    fn default() -> Self {
        ExecOptions { prefetch: true, simd: SimdMode::from_env(), split: SplitPolicy::from_env() }
    }
}

/// How replay batches split across pool workers (`TLABP_SPLIT`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SplitPolicy {
    /// Split by the work heuristic: up to one sub-batch per pool worker,
    /// never below one transposed word of members per sub-batch, and
    /// never below [`SPLIT_UNIT`] member-events of work per sub-batch
    /// when the batch's stream is already resident to measure.
    #[default]
    Auto,
    /// Never split (the pre-split scheduler: one task per batch).
    Off,
    /// Split every replay batch into up to `n` sub-batches, subject only
    /// to the one-word floor. The determinism suites force small
    /// batches apart with this; `TLABP_SPLIT=<n>` reaches it from the
    /// environment.
    Parts(usize),
}

impl SplitPolicy {
    /// Parses a `TLABP_SPLIT` value: `auto`, `off`, or a positive part
    /// count. Returns `Err(raw value)` on anything else.
    pub fn try_parse(value: &str) -> Result<SplitPolicy, String> {
        let normalized = value.trim().to_ascii_lowercase();
        match normalized.as_str() {
            "auto" => Ok(SplitPolicy::Auto),
            "off" => Ok(SplitPolicy::Off),
            _ => match normalized.parse::<usize>() {
                Ok(n) if n > 0 => Ok(SplitPolicy::Parts(n)),
                _ => Err(value.to_owned()),
            },
        }
    }

    /// Parses a `TLABP_SPLIT` value, warning on stderr and falling back
    /// to [`SplitPolicy::Auto`] when unrecognized — the same contract as
    /// `TLABP_THREADS` and `TLABP_SIMD`.
    #[must_use]
    pub fn parse(value: &str) -> SplitPolicy {
        match SplitPolicy::try_parse(value) {
            Ok(policy) => policy,
            Err(raw) => {
                eprintln!(
                    "warning: ignoring TLABP_SPLIT={raw:?} \
                     (expected auto|off|<positive part count>); using auto"
                );
                SplitPolicy::Auto
            }
        }
    }

    /// The policy selected by the `TLABP_SPLIT` environment variable
    /// (default [`SplitPolicy::Auto`]), read once per process.
    #[must_use]
    pub fn from_env() -> SplitPolicy {
        static POLICY: OnceLock<SplitPolicy> = OnceLock::new();
        *POLICY.get_or_init(|| match std::env::var("TLABP_SPLIT") {
            Ok(value) => SplitPolicy::parse(&value),
            Err(_) => SplitPolicy::Auto,
        })
    }
}

/// Executes `plan` on the process-wide [`SweepPool::global`] pool.
///
/// # Panics
///
/// Panics if a job references a custom predictor name with no registered
/// builder (a programming error caught before any cell runs).
#[must_use]
pub fn execute(plan: &Plan, store: &TraceStore) -> ResultSet {
    execute_on(SweepPool::global(), plan, store)
}

/// [`execute`] on an explicit pool — determinism tests use this to
/// compare single-worker and many-worker executions.
///
/// # Panics
///
/// See [`execute`].
#[must_use]
pub fn execute_on(pool: &SweepPool, plan: &Plan, store: &TraceStore) -> ResultSet {
    execute_with(pool, plan, store, ExecOptions::default())
}

/// [`execute_on`] with explicit [`ExecOptions`].
///
/// Since the session refactor this is a thin wrapper: submit the plan
/// through a [`Session`] and drain the [`JobStream`] to completion.
/// There is exactly one execution path — the blocking entry points and
/// the streaming service both run the same lowering, prefetch,
/// partition and scheduling code, so their results are bit-identical by
/// construction.
///
/// # Panics
///
/// See [`execute`].
#[must_use]
pub fn execute_with(
    pool: &SweepPool,
    plan: &Plan,
    store: &TraceStore,
    options: ExecOptions,
) -> ResultSet {
    Session::on(pool, store.clone()).with_options(options).submit(plan).into_result_set()
}

/// A worker-pool task: runs one scheduling unit (a singleton cell or a
/// fused/replay batch) and reports each member's `(job index, outcome)`.
type Task = Box<dyn FnOnce() -> Vec<(usize, JobOutcome)> + Send + 'static>;

/// A long-lived handle for running plans incrementally: the engine's
/// lowering, prefetch and batch scheduling behind a submit-and-stream
/// interface instead of a blocking call.
///
/// [`Session::submit`] returns a [`JobStream`] yielding each job's
/// outcome *in plan order, as soon as it is known* — a driver (or the
/// sweep service) can forward early results while later batches are
/// still simulating. A session holds its [`TraceStore`] by value
/// (stores are cheap shared handles), so one warm store can back many
/// sessions across many submissions; the pool reference lets concurrent
/// sessions share one set of workers.
///
/// Scheduling is windowed: at most [`Session::with_window`] tasks from
/// this session sit in the shared pool queue at once (the rest wait in
/// the stream), so a session streaming a thousand-job plan does not
/// monopolize the queue — concurrent sessions' tasks interleave FIFO,
/// which is the service's fair-admission story. Results travel over a
/// bounded channel sized to the window, so a slow consumer stalls
/// admission of *its own* remaining tasks, never the pool.
///
/// # Example
///
/// ```no_run
/// use tlabp_core::config::SchemeConfig;
/// use tlabp_sim::engine::Session;
/// use tlabp_sim::plan::{Job, Plan};
/// use tlabp_sim::suite::TraceStore;
/// use tlabp_workloads::Benchmark;
///
/// let session = Session::new(TraceStore::new());
/// let plan: Plan = Benchmark::ALL
///     .iter()
///     .map(|b| Job::scheme(SchemeConfig::pag(12), b))
///     .collect();
/// for item in session.submit(&plan) {
///     println!("job {}: {:?}", item.index, item.outcome.accuracy());
/// }
/// ```
pub struct Session<'p> {
    pool: &'p SweepPool,
    store: TraceStore,
    options: ExecOptions,
    window: usize,
}

impl Session<'static> {
    /// A session on the process-wide [`SweepPool::global`] pool.
    #[must_use]
    pub fn new(store: TraceStore) -> Self {
        Session::on(SweepPool::global(), store)
    }
}

impl<'p> Session<'p> {
    /// A session on an explicit pool.
    ///
    /// The default window is twice the pool width: enough queued work to
    /// keep every worker busy while the stream consumes, small enough
    /// that concurrent sessions interleave on the shared queue.
    #[must_use]
    pub fn on(pool: &'p SweepPool, store: TraceStore) -> Self {
        Session { pool, store, options: ExecOptions::default(), window: 2 * pool.threads() }
    }

    /// Replaces the execution options.
    #[must_use]
    pub fn with_options(mut self, options: ExecOptions) -> Self {
        self.options = options;
        self
    }

    /// Replaces the admission window (clamped to at least 1): the
    /// maximum number of this session's tasks in the shared pool queue
    /// at once.
    #[must_use]
    pub fn with_window(mut self, window: usize) -> Self {
        self.window = window.max(1);
        self
    }

    /// Lowers, prefetches and partitions `plan`, then returns a
    /// [`JobStream`] that schedules the work windowed and yields
    /// outcomes in plan order.
    ///
    /// Phases 0–2 of the classic engine run synchronously here (fail
    /// fast on unknown registry names; the prefetch barrier completes
    /// before any cell is admitted); phases 3–4 — scheduling and
    /// plan-order reassembly — happen incrementally as the stream is
    /// consumed. Tasks are ordered by their smallest job index before
    /// admission, so the head of the plan simulates first and the first
    /// item yields without waiting on unrelated tail batches.
    ///
    /// # Panics
    ///
    /// See [`execute`].
    #[must_use]
    pub fn submit(&self, plan: &Plan) -> JobStream<'p> {
        // Phase 0: lower on the submitting thread, so unknown registry
        // names and unsatisfiable jobs fail fast and deterministically.
        let lowered: Vec<Lowered> = plan.jobs().iter().map(lower).collect();

        // Phase 1: the prefetch barrier (see `prefetch_lowered`).
        if self.options.prefetch {
            prefetch_lowered(self.pool, plan, &lowered, &self.store);
        }

        // Phase 2: resolve skips inline and partition runnable cells via
        // the same pure [`partition_batches`] the prefetch pass used, so
        // both phases agree — batch for batch — on which streams the
        // plan needs.
        let partition = partition_batches(&lowered);
        let mut ready: BTreeMap<usize, JobOutcome> = BTreeMap::new();
        let mut cells: Vec<Option<Cell>> = lowered
            .into_iter()
            .enumerate()
            .map(|(index, low)| match low {
                Lowered::Skip { reason } => {
                    ready.insert(index, JobOutcome::Skipped { reason });
                    None
                }
                Lowered::Run(cell) => Some(cell),
            })
            .collect();
        let claim = |indices: &[usize], cells: &mut Vec<Option<Cell>>| -> Vec<(usize, Cell)> {
            indices
                .iter()
                .map(|&index| (index, cells[index].take().expect("each cell is scheduled once")))
                .collect()
        };

        // Build the task list keyed by each task's smallest job index
        // (batches keep plan order internally, so that is member 0).
        // Sorting by that key fills the stream head-first.
        let mut tasks: Vec<(usize, Task)> = Vec::new();
        for &index in &partition.singles {
            let cell = cells[index].take().expect("each cell is scheduled once");
            let store = self.store.clone();
            tasks.push((index, Box::new(move || vec![(index, run_cell(&cell, &store))])));
        }
        for indices in &partition.fused {
            let batch = claim(indices, &mut cells);
            let store = self.store.clone();
            tasks.push((indices[0], Box::new(move || run_fused_batch(batch, &store))));
        }
        for indices in &partition.replay {
            // The representative stream key comes from the WHOLE batch —
            // the key phase 1 prefetched — so every sub-batch walks the
            // same cached stream; a sub-batch recomputing its own (maybe
            // narrower) representative would derive a stream nobody
            // prefetched. The width fold makes replaying the wider
            // stream bit-identical for every member either way.
            let rep = replay_rep_key(indices.iter().map(|&index| replay_key_of(&cells, index)));
            let trace = cells[indices[0]].as_ref().expect("replay cell").trace;
            // Size the split by events × members when the stream is
            // already resident (a non-forcing peek — with prefetch on,
            // phase 1 just loaded it); an absent stream splits by the
            // worker/word caps alone.
            let work = self
                .store
                .peek_pattern_stream(trace.benchmark, trace.data_set, rep)
                .map(|stream| stream.len() as u64 * indices.len() as u64);
            let widths: Vec<u32> =
                indices.iter().map(|&index| replay_key_of(&cells, index).history_bits()).collect();
            let sub_batches =
                split_replay_batch(indices, &widths, self.options.split, self.pool.threads(), work);
            for sub in sub_batches {
                let batch = claim(&sub, &mut cells);
                let store = self.store.clone();
                let simd = self.options.simd;
                tasks.push((sub[0], Box::new(move || run_replay_batch(batch, &store, simd, rep))));
            }
        }
        tasks.sort_by_key(|(first, _)| *first);

        // The result channel is bounded to the window: at most `window`
        // tasks are in flight and each sends exactly once, so workers
        // never block on a slow stream consumer — unconsumed results
        // simply fill the channel and admission stops until the
        // consumer drains.
        let (sender, receiver) = sync_channel(self.window);
        JobStream {
            pool: self.pool,
            jobs: plan.jobs().to_vec().into_iter(),
            total: plan.len(),
            pending: tasks.into_iter().map(|(_, task)| task).collect(),
            sender: Some(sender),
            receiver,
            ready,
            next_index: 0,
            in_flight: 0,
            window: self.window,
        }
    }

    /// [`Session::submit`] + drain: the blocking call the classic
    /// [`execute`] entry points delegate to.
    ///
    /// # Panics
    ///
    /// See [`execute`].
    #[must_use]
    pub fn run(&self, plan: &Plan) -> ResultSet {
        self.submit(plan).into_result_set()
    }
}

/// One streamed result: the `index`-th job of the submitted plan and
/// its outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct JobItem {
    /// Position in the submitted plan.
    pub index: usize,
    /// The job, as submitted.
    pub job: Job,
    /// What it produced.
    pub outcome: JobOutcome,
}

/// The incremental result stream of one [`Session::submit`] call.
///
/// Iterating yields [`JobItem`]s strictly in plan order; each `next()`
/// admits queued tasks up to the session window, then blocks only until
/// the outcome of the *next* plan index is known. Outcomes that finish
/// out of order are buffered (never dropped), so draining the stream
/// always yields exactly one item per job.
pub struct JobStream<'p> {
    pool: &'p SweepPool,
    jobs: std::vec::IntoIter<Job>,
    total: usize,
    pending: VecDeque<Task>,
    /// Master clone of the result sender. Dropped once every task has
    /// been admitted, so a task that dies without reporting (worker
    /// panic) surfaces as a closed channel instead of a deadlock.
    sender: Option<SyncSender<Vec<(usize, JobOutcome)>>>,
    receiver: Receiver<Vec<(usize, JobOutcome)>>,
    /// Outcomes received (or resolved at submit time, for skips) but not
    /// yet yielded.
    ready: BTreeMap<usize, JobOutcome>,
    next_index: usize,
    in_flight: usize,
    window: usize,
}

impl JobStream<'_> {
    /// Tops the pool queue up to the session window.
    fn admit(&mut self) {
        while self.in_flight < self.window {
            let Some(task) = self.pending.pop_front() else { break };
            let sender = self.sender.clone().expect("sender is alive while tasks are pending");
            self.pool.spawn(move || {
                // Receiver dropped => the stream was abandoned mid-plan;
                // the result is simply discarded.
                let _ = sender.send(task());
            });
            self.in_flight += 1;
        }
        if self.pending.is_empty() {
            self.sender = None;
        }
    }

    /// Drains the stream through `sink` until it is exhausted or `sink`
    /// returns `false`, whichever comes first; returns `true` when every
    /// item was yielded.
    ///
    /// This is the session drain hook the sweep daemon's executor
    /// threads use: each yielded item is forwarded into a connection's
    /// bounded output queue, and a failed forward (the client hung up)
    /// stops the drain early — the stream is then dropped mid-plan,
    /// which is safe: results of still-in-flight tasks are simply
    /// discarded (see [`Session::submit`]).
    ///
    /// # Panics
    ///
    /// Panics if a task panicked on a worker: its results can never
    /// arrive.
    pub fn drain_while(mut self, mut sink: impl FnMut(JobItem) -> bool) -> bool {
        for item in self.by_ref() {
            if !sink(item) {
                return false;
            }
        }
        true
    }

    /// Drains the stream into a [`ResultSet`] (blocking until every job
    /// has reported) — plan-order reassembly as a fold over the stream.
    ///
    /// # Panics
    ///
    /// Panics if a task panicked on a worker: its results can never
    /// arrive.
    #[must_use]
    pub fn into_result_set(self) -> ResultSet {
        let mut rows = Vec::with_capacity(self.total);
        for item in self {
            rows.push((item.job, item.outcome));
        }
        ResultSet { rows }
    }
}

impl Iterator for JobStream<'_> {
    type Item = JobItem;

    fn next(&mut self) -> Option<JobItem> {
        loop {
            if self.next_index == self.total {
                return None;
            }
            if let Some(outcome) = self.ready.remove(&self.next_index) {
                let job = self.jobs.next().expect("one job per yielded index");
                let index = self.next_index;
                self.next_index += 1;
                return Some(JobItem { index, job, outcome });
            }
            self.admit();
            // The missing outcome belongs to a pending or in-flight task
            // (every runnable index is covered by exactly one task and
            // admit() always schedules at least one when any remain), so
            // a receive must eventually deliver it.
            debug_assert!(self.in_flight > 0, "missing outcome with nothing in flight");
            let batch =
                self.receiver.recv().expect("a sweep task panicked before reporting its results");
            self.in_flight -= 1;
            for (index, outcome) in batch {
                debug_assert!(
                    index >= self.next_index && !self.ready.contains_key(&index),
                    "each job reports exactly once"
                );
                self.ready.insert(index, outcome);
            }
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining = self.total - self.next_index;
        (remaining, Some(remaining))
    }
}

impl ExactSizeIterator for JobStream<'_> {}

/// Runs only the prefetch pass of [`execute`] for `plan`: every distinct
/// trace form and pattern stream the plan's runnable jobs need is
/// generated (or, for a disk-backed store, loaded) across `pool`, and the
/// call returns once all of them are resident in `store`.
///
/// This is `execute`'s phase 1 exposed on its own, for warming a store
/// ahead of time (e.g. populating a [`TraceStore::with_cache_dir`]
/// directory) and for measuring ingestion cost separately from
/// simulation (the bench's `cold_start` section).
///
/// # Panics
///
/// See [`execute`].
pub fn prefetch_on(pool: &SweepPool, plan: &Plan, store: &TraceStore) {
    let lowered: Vec<Lowered> = plan.jobs().iter().map(lower).collect();
    prefetch_lowered(pool, plan, &lowered, store);
}

/// Phase 1 of execution: pre-generate each distinct trace exactly once,
/// as pool jobs, in the deepest derived form any of its cells needs
/// (deeper forms initialize the shallower ones in the same store slot),
/// so no simulation cell ever blocks on the VM or an interning pass.
/// Replay batches additionally pre-derive their *representative* pattern
/// streams in the same barrier: the partition is recomputed here (it is
/// a pure function of the lowered plan), and each replay batch
/// contributes exactly one (trace, rep key) stream — the widest member
/// width of its fold group — deduplicated across batches up front, so a
/// width × automaton grid sweep derives one stream per (trace, fold
/// class) instead of one per configuration. Stream derivation chains
/// through the interned form itself, so it never races ahead of it.
/// With a disk-backed store, each of these tasks starts by hydrating its
/// slot from the artifact cache, so a warm directory turns the whole
/// barrier into parallel file loads.
fn prefetch_lowered(pool: &SweepPool, plan: &Plan, lowered: &[Lowered], store: &TraceStore) {
    let mut positions: HashMap<(&'static str, DataSet), usize> = HashMap::new();
    let mut needed: Vec<(TraceKey, TraceForm)> = Vec::new();
    for (job, low) in plan.jobs().iter().zip(lowered) {
        let Lowered::Run(cell) = low else { continue };
        let mut need = |key: TraceKey, form: TraceForm| {
            if let Some(&pos) = positions.get(&(key.benchmark.name(), key.data_set)) {
                needed[pos].1 = needed[pos].1.max(form);
            } else {
                positions.insert((key.benchmark.name(), key.data_set), needed.len());
                needed.push((key, form));
            }
        };
        need(job.trace, cell.trace_form());
        if cell.needs_training() {
            need(
                TraceKey { benchmark: job.trace.benchmark, data_set: DataSet::Training },
                TraceForm::Full,
            );
        }
    }
    let mut stream_positions: HashMap<(&'static str, DataSet, StreamKey), ()> = HashMap::new();
    let mut streams_needed: Vec<(TraceKey, StreamKey)> = Vec::new();
    for indices in &partition_batches(lowered).replay {
        let cell_at = |index: usize| match &lowered[index] {
            Lowered::Run(cell) => cell,
            Lowered::Skip { .. } => unreachable!("partition only batches runnable cells"),
        };
        let trace = cell_at(indices[0]).trace;
        let rep = replay_rep_key(indices.iter().map(|&index| {
            cell_at(index).replay.expect("replay batch members carry their stream key")
        }));
        let dedup = (trace.benchmark.name(), trace.data_set, rep);
        if stream_positions.insert(dedup, ()).is_none() {
            streams_needed.push((trace, rep));
        }
    }
    enum PreGen {
        Form(TraceKey, TraceForm),
        Stream(TraceKey, StreamKey),
    }
    let pre_gen = needed
        .into_iter()
        .map(|(key, form)| PreGen::Form(key, form))
        .chain(streams_needed.into_iter().map(|(key, stream)| PreGen::Stream(key, stream)));
    pool.run(pre_gen.map(|item| {
        let store = store.clone();
        move || match item {
            PreGen::Form(key, TraceForm::Full) => {
                let _ = store.get(key.benchmark, key.data_set);
            }
            PreGen::Form(key, TraceForm::Packed) => {
                let _ = store.get_packed(key.benchmark, key.data_set);
            }
            PreGen::Form(key, TraceForm::Interned) => {
                let _ = store.get_interned(key.benchmark, key.data_set);
            }
            PreGen::Stream(key, stream) => {
                // With the streaming tier on, a stream already persisted
                // in a v3 artifact will be walked chunk-by-chunk from
                // disk — prefetch then touches only the chunk *index*
                // (header + section heads), never the bodies, so the
                // barrier stays cheap and resident bytes stay bounded.
                // Only a missing section still derives (and persists)
                // the stream in memory: derivation needs the interned
                // form regardless.
                if stream_bytes_from_env().is_some()
                    && store.stream_on_disk(key.benchmark, key.data_set, stream)
                {
                    return;
                }
                let _ = store.get_pattern_stream(key.benchmark, key.data_set, stream);
            }
        }
    }));
}

/// Largest number of predictors stepped together in one fused pass.
///
/// Bounds a batch's working set — every predictor's tables must stay
/// cache-resident while the batch replays a decoded chunk — while still
/// amortizing stream decode over many predictors. Oversized trace-groups
/// split into nearly-even contiguous batches, which also gives the pool
/// balanced tasks to schedule.
const MAX_FUSE_BATCH: usize = 16;

/// Largest number of members walked together in one transposed replay
/// batch.
///
/// Replay batches group by fold class, so a Table 3-style grid packs an
/// entire scheme column — every width × automaton combination — into
/// one group (e.g. 5 widths × 5 automata × {PAg, PAp} = 50 members on
/// the shared paper-default BHT) and one batch walks the stream once
/// for the whole column. The cap is sized so a same-width group can
/// fill eight transposed words per PHT row — the AVX-512 body's full
/// 512-bit step — while the intra-batch split (below) hands oversized
/// batches to idle workers a word at a time, so a wide batch no longer
/// costs latency on a multi-core host.
const MAX_REPLAY_BATCH: usize = 128;

/// Minimum replay work (stream events × batch members) per sub-batch
/// before [`SplitPolicy::Auto`] splits further: below this the extra
/// stream walk and task hand-off cost more than a spare worker saves.
/// At the measured ~1.5B member-predictions/s a unit is a few
/// milliseconds of kernel time.
const SPLIT_UNIT: u64 = 1 << 22;

/// The stream key a lowered replay cell carries.
fn replay_key_of(cells: &[Option<Cell>], index: usize) -> StreamKey {
    cells[index]
        .as_ref()
        .expect("replay cells are claimed after splitting")
        .replay
        .expect("replay batch members carry their stream key")
}

/// Splits one replay batch's member indices into sub-batches for
/// intra-batch parallelism, or returns the batch whole when the policy,
/// the pool, or the work says not to.
///
/// The split granule ("atom") is one transposed word: members regroup
/// by stream width (`widths[i]` belongs to `indices[i]`) and each width
/// group cuts into runs of at most [`LANES_PER_WORD`] members, so no
/// sub-batch ever holds a fragment of a word that an unsplit batch
/// would have stepped in one SWAR op. Atoms distribute contiguously and
/// nearly evenly over the chosen part count; member indices sort inside
/// each part so every sub-batch keeps plan order internally.
///
/// Determinism: the result is a pure function of the arguments, and —
/// because a member's replay outcome is independent of its batch's
/// composition (pinned by the batch-invariance test and the determinism
/// suite) — the merged [`ResultSet`] is bit-identical at every part
/// count, worker count and policy.
fn split_replay_batch(
    indices: &[usize],
    widths: &[u32],
    policy: SplitPolicy,
    pool_threads: usize,
    work: Option<u64>,
) -> Vec<Vec<usize>> {
    debug_assert_eq!(indices.len(), widths.len());
    // Atoms: width groups in first-seen order, cut at word boundaries.
    let mut groups: Vec<(u32, Vec<usize>)> = Vec::new();
    for (&index, &width) in indices.iter().zip(widths) {
        match groups.iter_mut().find(|(w, _)| *w == width) {
            Some((_, group)) => group.push(index),
            None => groups.push((width, vec![index])),
        }
    }
    let atoms: Vec<&[usize]> =
        groups.iter().flat_map(|(_, group)| group.chunks(LANES_PER_WORD)).collect();

    let cap = atoms.len().max(1);
    let parts = match policy {
        SplitPolicy::Off => 1,
        SplitPolicy::Parts(n) => n.clamp(1, cap),
        SplitPolicy::Auto => {
            let by_work = match work {
                Some(work) => usize::try_from(work / SPLIT_UNIT).unwrap_or(usize::MAX).max(1),
                // Stream not resident: let the worker/word caps decide.
                None => cap,
            };
            pool_threads.min(cap).min(by_work).max(1)
        }
    };
    if parts <= 1 {
        return vec![indices.to_vec()];
    }
    let base = atoms.len() / parts;
    let extra = atoms.len() % parts;
    let mut remaining = atoms.as_slice();
    (0..parts)
        .map(|i| {
            let take = base + usize::from(i < extra);
            let (head, tail) = remaining.split_at(take);
            remaining = tail;
            let mut part: Vec<usize> = head.iter().flat_map(|atom| atom.iter().copied()).collect();
            part.sort_unstable();
            part
        })
        .collect()
}

/// Nearly-even batch sizes for a group of `n` cells: as few batches as
/// `cap` allows, sizes differing by at most one (17 cells at cap 16
/// become 9 + 8, not 16 + 1).
fn batch_sizes(n: usize, cap: usize) -> Vec<usize> {
    if n == 0 {
        return Vec::new();
    }
    let batches = n.div_ceil(cap);
    let base = n / batches;
    let extra = n % batches;
    (0..batches).map(|i| base + usize::from(i < extra)).collect()
}

/// Splits one group of job indices into contiguous [`batch_sizes`]
/// batches, preserving plan order within and across batches.
fn split_into_batches(group: Vec<usize>, cap: usize) -> Vec<Vec<usize>> {
    let sizes = batch_sizes(group.len(), cap);
    let mut indices = group.into_iter();
    sizes.into_iter().map(|size| indices.by_ref().take(size).collect()).collect()
}

/// The engine's scheduling partition: which runnable jobs execute as
/// singleton cells, which execute in fused trace-batches, and which
/// execute in transposed replay batches — all as indices into the
/// lowered plan.
///
/// Produced by [`partition_batches`], a pure function of the lowered
/// plan, and consumed by *both* the prefetch pass (phase 1, to derive
/// each replay batch's representative stream up front) and the
/// scheduler (phase 3) — so the two phases can never disagree about
/// which artifacts the plan needs.
struct Partition {
    /// Jobs that run alone ([`run_cell`]).
    singles: Vec<usize>,
    /// Fused trace-batches ([`run_fused_batch`]), capped at
    /// [`MAX_FUSE_BATCH`].
    fused: Vec<Vec<usize>>,
    /// Transposed replay batches ([`run_replay_batch`]), capped at
    /// [`MAX_REPLAY_BATCH`].
    replay: Vec<Vec<usize>>,
}

/// Partitions runnable cells into [`Partition`] batches. Replay-lowered
/// cells group by `(trace, fold class)` — the width-*erased*
/// [`StreamKey::fold_key`] — so automaton ablations *and* width variants
/// of one first-level mechanism share a batch; fusible cells group by
/// trace; everything else runs alone. Groups form in first-seen plan
/// order and split into nearly-even contiguous batches, so the partition
/// is a pure function of the plan.
fn partition_batches(lowered: &[Lowered]) -> Partition {
    let mut singles: Vec<usize> = Vec::new();
    let mut fused_of: HashMap<(&'static str, DataSet), usize> = HashMap::new();
    let mut fused: Vec<Vec<usize>> = Vec::new();
    let mut replay_of: HashMap<(&'static str, DataSet, FoldKey), usize> = HashMap::new();
    let mut replay: Vec<Vec<usize>> = Vec::new();
    for (index, low) in lowered.iter().enumerate() {
        let Lowered::Run(cell) = low else { continue };
        if let Some(stream_key) = cell.replay {
            let key = (cell.trace.benchmark.name(), cell.trace.data_set, stream_key.fold_key());
            let group = *replay_of.entry(key).or_insert_with(|| {
                replay.push(Vec::new());
                replay.len() - 1
            });
            replay[group].push(index);
        } else if cell.fusible() {
            let key = (cell.trace.benchmark.name(), cell.trace.data_set);
            let group = *fused_of.entry(key).or_insert_with(|| {
                fused.push(Vec::new());
                fused.len() - 1
            });
            fused[group].push(index);
        } else {
            singles.push(index);
        }
    }
    Partition {
        singles,
        fused: fused.into_iter().flat_map(|g| split_into_batches(g, MAX_FUSE_BATCH)).collect(),
        replay: replay.into_iter().flat_map(|g| split_into_batches(g, MAX_REPLAY_BATCH)).collect(),
    }
}

/// The representative stream key of a replay batch: the key of its
/// widest member (first-seen on ties, so the choice is deterministic).
/// Every member shares the batch's fold class, and the width fold lets
/// any narrower member replay the representative's stream by masking —
/// so this is the *only* stream the batch derives or fetches.
fn replay_rep_key(keys: impl Iterator<Item = StreamKey>) -> StreamKey {
    keys.reduce(|best, key| if key.history_bits() > best.history_bits() { key } else { best })
        .expect("replay batches are non-empty")
}

/// Runs one fused batch on a worker thread: a single pass over the
/// trace's interned conditional stream stepping every predictor of the
/// batch ([`simulate_fused`]).
fn run_fused_batch(batch: Vec<(usize, Cell)>, store: &TraceStore) -> Vec<(usize, JobOutcome)> {
    let trace = batch[0].1.trace;
    let interned = store.get_interned(trace.benchmark, trace.data_set);
    let mut predictors: Vec<AnyPredictor> =
        batch.iter().map(|(_, cell)| cell.build.build_any(store, cell.trace)).collect();
    let sims = simulate_fused(&mut predictors, &interned);
    batch
        .into_iter()
        .zip(sims)
        .map(|((index, _), sim)| {
            (index, JobOutcome::Measured(JobMetrics { sim, miss_breakdown: None, fetch: None }))
        })
        .collect()
}

/// Runs one replay batch (or sub-batch) on a worker thread: fetch the
/// batch's *representative* pattern stream once (`rep`, the widest
/// member width of the whole pre-split fold group — already derived in
/// phase 1, and shared by every sub-batch of a split) and walk every
/// member's bit-sliced transposed PHT bank over it in a single SWAR
/// pass ([`simulate_replay_transposed`]).
///
/// When the streaming tier is on (`TLABP_STREAM_BYTES`) and the stream
/// is already persisted in a v3 artifact, the batch walks it
/// chunk-by-chunk through a [`StreamCursor`] instead of hydrating it —
/// bit-identical results with resident bytes bounded by the window. A
/// cursor that cannot open (cold artifact) or errors mid-stream
/// (corrupt chunk) falls back to the hydrated path, so streaming is
/// only ever an optimization, never a correctness dependency.
fn run_replay_batch(
    batch: Vec<(usize, Cell)>,
    store: &TraceStore,
    simd: SimdMode,
    rep: StreamKey,
) -> Vec<(usize, JobOutcome)> {
    let trace = batch[0].1.trace;
    let predictors: Vec<AnyPredictor> =
        batch.iter().map(|(_, cell)| cell.build.build_any(store, cell.trace)).collect();
    let sims = replay_streamed(&predictors, store, trace, simd, rep).unwrap_or_else(|| {
        let stream = store.get_pattern_stream(trace.benchmark, trace.data_set, rep);
        simulate_replay_transposed(&predictors, &stream, simd)
            .expect("replay lowering only selects schemes with a second level")
    });
    batch
        .into_iter()
        .zip(sims)
        .map(|((index, _), sim)| {
            (index, JobOutcome::Measured(JobMetrics { sim, miss_breakdown: None, fetch: None }))
        })
        .collect()
}

/// The streaming attempt of [`run_replay_batch`]: `None` means "use the
/// hydrated path" — the tier is off, the artifact has no such stream
/// yet, or the walk failed mid-stream (with a warning).
fn replay_streamed(
    predictors: &[AnyPredictor],
    store: &TraceStore,
    trace: TraceKey,
    simd: SimdMode,
    rep: StreamKey,
) -> Option<Vec<SimResult>> {
    let stream_bytes = stream_bytes_from_env()?;
    let mut cursor =
        store.open_stream_cursor(trace.benchmark, trace.data_set, rep, stream_bytes)?;
    match simulate_replay_transposed_streamed(predictors, &mut cursor, simd)? {
        Ok(sims) => Some(sims),
        Err(err) => {
            eprintln!(
                "warning: streaming replay of {}-{:?} failed ({err}); rehydrating",
                trace.benchmark.name(),
                trace.data_set
            );
            None
        }
    }
}

/// How a job's predictor gets built on the worker.
enum BuildSpec {
    /// A catalog scheme, monomorphized ([`AnyPredictor`]).
    Scheme(SchemeConfig),
    /// A registered builder, dynamically dispatched.
    Custom(DynBuilder),
}

impl BuildSpec {
    fn build_any(&self, store: &TraceStore, trace: TraceKey) -> AnyPredictor {
        match self {
            BuildSpec::Scheme(config) if config.needs_training() => {
                config.build_any_trained(&store.get(trace.benchmark, DataSet::Training))
            }
            BuildSpec::Scheme(config) => config.build_any().expect("non-training scheme builds"),
            BuildSpec::Custom(builder) => AnyPredictor::Dyn(builder()),
        }
    }

    fn build_boxed(&self, store: &TraceStore, trace: TraceKey) -> Box<dyn BranchPredictor> {
        match self {
            BuildSpec::Scheme(config) if config.needs_training() => {
                config.build_trained(&store.get(trace.benchmark, DataSet::Training))
            }
            BuildSpec::Scheme(config) => config.build().expect("non-training scheme builds"),
            BuildSpec::Custom(builder) => builder(),
        }
    }
}

/// Which simulation loop a job runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ExecPath {
    /// Packed conditional stream, fused `step` loop.
    Packed,
    /// Full event trace with context-switch modeling.
    FullTrace,
    /// Boxed `dyn` predictor over the full event trace (opt-in only).
    Reference,
}

/// A lowered job: everything the worker closure needs, `Send + 'static`.
struct Cell {
    build: BuildSpec,
    path: ExecPath,
    trace: TraceKey,
    sim: SimConfig,
    metrics: MetricSet,
    fuse: bool,
    /// `Some` when the cell lowers to pattern-stream replay: the
    /// first-level stream key it replays over.
    replay: Option<StreamKey>,
}

/// The derived forms of a trace, ordered by derivation depth. Producing
/// a deeper form initializes every shallower one in the same
/// [`TraceStore`] slot, so pre-generation computes each key's *maximum*
/// required form.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum TraceForm {
    /// The full event trace.
    Full,
    /// Plus the packed conditional-branch stream.
    Packed,
    /// Plus the pc-interned conditional stream.
    Interned,
}

impl Cell {
    fn needs_training(&self) -> bool {
        matches!(&self.build, BuildSpec::Scheme(config) if config.needs_training())
    }

    /// Whether the engine may run this cell inside a fused trace pass:
    /// the packed path (full-trace and reference cells step events the
    /// interned stream can't represent), accuracy-only metrics (the
    /// instrumented loops observe predictor internals per event), and
    /// the job's consent ([`Job::fuse`]).
    fn fusible(&self) -> bool {
        self.fuse && self.path == ExecPath::Packed && self.metrics == MetricSet::ACCURACY
    }

    /// The deepest trace form this cell reads.
    fn trace_form(&self) -> TraceForm {
        if self.fusible() {
            TraceForm::Interned
        } else if self.path == ExecPath::Packed {
            TraceForm::Packed
        } else {
            TraceForm::Full
        }
    }
}

enum Lowered {
    Skip { reason: String },
    Run(Cell),
}

/// The planner: pick the execution path and effective simulation options
/// for one job (see the module docs for the path-selection rules).
fn lower(job: &Job) -> Lowered {
    let build = match &job.spec {
        PredictorSpec::Scheme(config) => {
            if config.needs_training() && !job.trace.benchmark.has_training_set() {
                return Lowered::Skip {
                    reason: format!(
                        "{config} needs a training trace but {} has no training set",
                        job.trace.benchmark.name()
                    ),
                };
            }
            BuildSpec::Scheme(*config)
        }
        PredictorSpec::Custom(name) => match registry::builder(name) {
            Some(builder) => BuildSpec::Custom(builder),
            None => panic!(
                "no predictor registered under {name:?}; \
                 call tlabp_core::registry::register before executing the plan"
            ),
        },
    };

    // A scheme's own `c` flag upgrades a no-switch sim to the paper's
    // context-switch model (Table 3 semantics, as in `run_suite`).
    let mut sim = job.sim;
    if let PredictorSpec::Scheme(config) = &job.spec {
        if config.context_switch() && sim.context_switch.is_none() {
            sim = SimConfig::paper_context_switch();
        }
    }

    let path = if job.reference_path {
        ExecPath::Reference
    } else if sim.context_switch.is_none() {
        ExecPath::Packed
    } else {
        ExecPath::FullTrace
    };

    // Pattern-stream replay: a fusion-eligible catalog scheme whose first
    // level maps to a stream key replays the materialized stream instead
    // of walking it. The fusion-eligibility gate keeps `with_fusion(false)`
    // meaning "per-cell packed path" (the throughput baselines) and
    // `with_replay(false)` meaning "PR 3 fused path".
    let replay = match &job.spec {
        PredictorSpec::Scheme(config)
            if job.replay
                && job.fuse
                && path == ExecPath::Packed
                && job.metrics == MetricSet::ACCURACY =>
        {
            replay_stream_key(*config)
        }
        _ => None,
    };

    Lowered::Run(Cell {
        build,
        path,
        trace: job.trace,
        sim,
        metrics: job.metrics,
        fuse: job.fuse,
        replay,
    })
}

/// Runs one lowered cell on a worker thread.
fn run_cell(cell: &Cell, store: &TraceStore) -> JobOutcome {
    if cell.path == ExecPath::Reference {
        let mut boxed = cell.build.build_boxed(store, cell.trace);
        let full = store.get(cell.trace.benchmark, cell.trace.data_set);
        let sim = simulate(&mut *boxed, &full, &cell.sim);
        return JobOutcome::Measured(JobMetrics { sim, miss_breakdown: None, fetch: None });
    }

    // Instrumented metrics replay the full trace through dedicated
    // observation loops (each with a fresh predictor, so the loops are
    // independent). Their conditional-branch accuracy counters are
    // identical to the standard no-switch loop, so whichever ran also
    // supplies the job's SimResult.
    let miss_breakdown = cell.metrics.miss_breakdown.then(|| {
        let full = store.get(cell.trace.benchmark, cell.trace.data_set);
        match cell.build.build_any(store, cell.trace) {
            AnyPredictor::Pag(mut pag) => Some(run_miss_breakdown(&mut pag, &full)),
            _ => None,
        }
    });
    let fetch = cell.metrics.fetch.map(|spec| {
        let mut predictor = cell.build.build_any(store, cell.trace);
        let full = store.get(cell.trace.benchmark, cell.trace.data_set);
        run_fetch(&mut predictor, &full, spec)
    });

    let sim = if let Some(Some((sim, _))) = &miss_breakdown {
        sim.clone()
    } else if let Some((sim, _)) = &fetch {
        sim.clone()
    } else {
        let mut predictor = cell.build.build_any(store, cell.trace);
        match cell.path {
            ExecPath::Packed => simulate_packed(
                &mut predictor,
                &store.get_packed(cell.trace.benchmark, cell.trace.data_set),
            ),
            ExecPath::FullTrace => simulate(
                &mut predictor,
                &store.get(cell.trace.benchmark, cell.trace.data_set),
                &cell.sim,
            ),
            ExecPath::Reference => unreachable!("handled above"),
        }
    };

    JobOutcome::Measured(JobMetrics {
        sim,
        miss_breakdown: miss_breakdown.flatten().map(|(_, b)| b),
        fetch: fetch.map(|(_, f)| f),
    })
}

/// The misprediction-attribution loop: every misprediction of a
/// PAg-structured predictor lands in exactly one [`MissBreakdown`]
/// bucket, classified from the predictor's state at prediction time.
fn run_miss_breakdown(pag: &mut Pag, trace: &Trace) -> (SimResult, MissBreakdown) {
    let mut result =
        SimResult { scheme: pag.name(), predictions: 0, correct: 0, context_switches: 0 };
    let mut buckets = MissBreakdown::default();
    // Shadow of the global PHT: which static branch last updated each
    // entry (for interference attribution). Grown on demand so any
    // history length works.
    let mut last_writer: Vec<Option<u64>> = Vec::new();
    for branch in trace.conditional_branches() {
        let diagnostics = pag.predict_diagnosed(branch);
        pag.update(branch);
        result.predictions += 1;
        result.correct += u64::from(diagnostics.predicted_taken == branch.taken);
        if last_writer.len() <= diagnostics.pattern {
            last_writer.resize(diagnostics.pattern + 1, None);
        }
        if diagnostics.predicted_taken != branch.taken {
            if !diagnostics.bht_hit {
                buckets.bht_miss += 1;
            } else if matches!(diagnostics.pattern_state.value(), 1 | 2) {
                buckets.weak_pattern += 1;
            } else if last_writer[diagnostics.pattern].is_some_and(|writer| writer != branch.pc) {
                buckets.interference += 1;
            } else {
                buckets.noise += 1;
            }
        }
        last_writer[diagnostics.pattern] = Some(branch.pc);
    }
    assert_eq!(
        buckets.total(),
        result.predictions - result.correct,
        "every misprediction is classified exactly once"
    );
    (result, buckets)
}

/// The Section 3.2 fetch-path loop: the direction predictor handles
/// conditional branches (everything else is architecturally taken) and a
/// target cache supplies target addresses for every branch class.
fn run_fetch<P: BranchPredictor>(
    predictor: &mut P,
    trace: &Trace,
    spec: TargetCacheSpec,
) -> (SimResult, FetchStats) {
    let mut result =
        SimResult { scheme: predictor.name(), predictions: 0, correct: 0, context_switches: 0 };
    let mut stats = FetchStats::default();
    let mut cache = TargetCache::new(spec.entries, spec.ways);
    for branch in trace.branches() {
        let predicted_taken = if branch.class.is_conditional() {
            let predicted = predictor.predict(branch);
            predictor.update(branch);
            result.predictions += 1;
            result.correct += u64::from(predicted == branch.taken);
            predicted
        } else {
            true
        };
        let outcome = cache.fetch(branch, predicted_taken);
        cache.resolve(branch);

        stats.branches += 1;
        stats.correct_path += u64::from(outcome.is_correct_path());
        match outcome {
            FetchOutcome::HitCorrectTarget => stats.no_bubble_taken += 1,
            FetchOutcome::HitWrongPath => {
                stats.squashes += 1;
                if branch.class == BranchClass::Return {
                    stats.return_target_misses += 1;
                }
            }
            FetchOutcome::HitFallThrough { correct } | FetchOutcome::Miss { correct } => {
                stats.squashes += u64::from(!correct);
            }
        }
    }
    (result, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tlabp_core::automaton::Automaton;
    use tlabp_core::schemes::Gshare;
    use tlabp_workloads::Benchmark;

    fn li() -> &'static Benchmark {
        Benchmark::by_name("li").expect("li exists")
    }

    #[test]
    fn engine_matches_run_sweep_semantics() {
        let store = TraceStore::new();
        let configs = [SchemeConfig::pag(8), SchemeConfig::profiling()];
        let plan = Plan::suites(&configs, &SimConfig::no_context_switch());
        let suites = execute(&plan, &store).suites();
        assert_eq!(suites.len(), 2);
        assert_eq!(suites[0].scheme, configs[0].to_string());
        assert_eq!(suites[0].rows.len(), Benchmark::ALL.len());
        // Profiling skips the benchmarks without training sets.
        let missing = suites[1].rows.iter().filter(|r| r.accuracy.is_none()).count();
        assert_eq!(missing, Benchmark::ALL.iter().filter(|b| !b.has_training_set()).count());
    }

    #[test]
    fn custom_spec_runs_through_the_registry() {
        registry::register("engine-test-gshare", || Box::new(Gshare::new(10, Automaton::A2)));
        let store = TraceStore::new();
        let plan: Plan = [Job::custom("engine-test-gshare", li())].into_iter().collect();
        let results = execute(&plan, &store);
        let accuracy = results.outcome(0).accuracy().expect("measured");
        assert!(accuracy > 0.8, "gshare on li: {accuracy}");
    }

    #[test]
    #[should_panic(expected = "no predictor registered")]
    fn unknown_custom_name_fails_fast() {
        let plan: Plan = [Job::custom("engine-test-unregistered", li())].into_iter().collect();
        let _ = execute(&plan, &TraceStore::new());
    }

    #[test]
    fn reference_path_matches_fast_path() {
        let store = TraceStore::new();
        let fast: Plan = [Job::scheme(SchemeConfig::pag(8), li())].into_iter().collect();
        let reference: Plan = [Job::scheme(SchemeConfig::pag(8), li()).with_reference_path(true)]
            .into_iter()
            .collect();
        let fast_out = execute(&fast, &store);
        let reference_out = execute(&reference, &store);
        assert_eq!(
            fast_out.outcome(0).metrics().unwrap().sim,
            reference_out.outcome(0).metrics().unwrap().sim,
            "reference and fast paths must be bit-identical"
        );
    }

    #[test]
    fn miss_breakdown_buckets_sum_to_mispredictions() {
        let store = TraceStore::new();
        let plan: Plan = [Job::scheme(SchemeConfig::pag(12), li())
            .with_metrics(MetricSet { miss_breakdown: true, fetch: None })]
        .into_iter()
        .collect();
        let results = execute(&plan, &store);
        let metrics = results.outcome(0).metrics().expect("measured");
        let breakdown = metrics.miss_breakdown.expect("PAg yields a breakdown");
        assert_eq!(breakdown.total(), metrics.sim.predictions - metrics.sim.correct);
        assert!(metrics.sim.predictions > 0);
    }

    #[test]
    fn miss_breakdown_is_none_for_non_pag() {
        let store = TraceStore::new();
        let plan: Plan = [Job::scheme(SchemeConfig::gag(10), li())
            .with_metrics(MetricSet { miss_breakdown: true, fetch: None })]
        .into_iter()
        .collect();
        let results = execute(&plan, &store);
        let metrics = results.outcome(0).metrics().expect("measured");
        assert!(metrics.miss_breakdown.is_none());
        assert!(metrics.sim.predictions > 0, "accuracy still measured");
    }

    #[test]
    fn fused_plan_matches_per_cell_plan_bit_for_bit() {
        let store = TraceStore::new();
        let configs = [
            SchemeConfig::pag(8),
            SchemeConfig::gag(10),
            SchemeConfig::pap(6),
            SchemeConfig::btfn(),
        ];
        let benchmarks = [li(), Benchmark::by_name("eqntott").unwrap()];
        let fused: Plan = benchmarks
            .iter()
            .flat_map(|&b| configs.iter().map(move |&c| Job::scheme(c, b)))
            .collect();
        let per_cell: Plan =
            fused.jobs().iter().map(|job| job.clone().with_fusion(false)).collect();
        let fused_out = execute(&fused, &store);
        let per_cell_out = execute(&per_cell, &store);
        for index in 0..fused.len() {
            assert_eq!(
                fused_out.outcome(index).metrics().unwrap().sim,
                per_cell_out.outcome(index).metrics().unwrap().sim,
                "job {index} must be fusion-invariant"
            );
        }
    }

    #[test]
    fn mixed_plan_fuses_eligible_jobs_and_falls_back_for_the_rest() {
        // One plan holding every scheduling class at once: fusible cells,
        // a context-switch (full-trace) cell, an instrumented cell, a
        // fusion-off cell and a skip. The outcomes must match the same
        // jobs run as singleton per-cell plans.
        let store = TraceStore::new();
        let jobs = [
            Job::scheme(SchemeConfig::pag(8), li()),
            Job::scheme(SchemeConfig::gag(10).with_context_switch(true), li()),
            Job::scheme(SchemeConfig::pag(12), li())
                .with_metrics(MetricSet { miss_breakdown: true, fetch: None }),
            Job::scheme(SchemeConfig::pap(6), li()).with_fusion(false),
            Job::scheme(SchemeConfig::profiling(), Benchmark::by_name("eqntott").unwrap()),
            Job::scheme(SchemeConfig::btfn(), li()),
        ];
        let mixed: Plan = jobs.iter().cloned().collect();
        let mixed_out = execute(&mixed, &store);
        for (index, job) in jobs.iter().enumerate() {
            let single: Plan = [job.clone().with_fusion(false)].into_iter().collect();
            let single_out = execute(&single, &store);
            assert_eq!(
                mixed_out.outcome(index),
                single_out.outcome(0),
                "job {index} ({}) must not depend on its batch",
                job.label()
            );
        }
    }

    #[test]
    fn batch_sizes_are_capped_and_nearly_even() {
        assert_eq!(batch_sizes(0, MAX_FUSE_BATCH), Vec::<usize>::new());
        assert_eq!(batch_sizes(1, MAX_FUSE_BATCH), vec![1]);
        assert_eq!(batch_sizes(MAX_FUSE_BATCH, MAX_FUSE_BATCH), vec![MAX_FUSE_BATCH]);
        assert_eq!(batch_sizes(17, MAX_FUSE_BATCH), vec![9, 8]);
        assert_eq!(batch_sizes(33, MAX_FUSE_BATCH), vec![11, 11, 11]);
        assert_eq!(batch_sizes(MAX_REPLAY_BATCH, MAX_REPLAY_BATCH), vec![MAX_REPLAY_BATCH]);
        assert_eq!(batch_sizes(MAX_REPLAY_BATCH + 1, MAX_REPLAY_BATCH), vec![65, 64]);
        for cap in [MAX_FUSE_BATCH, MAX_REPLAY_BATCH] {
            for n in 0..10 * cap {
                let sizes = batch_sizes(n, cap);
                assert_eq!(sizes.iter().sum::<usize>(), n, "sizes partition {n} cells");
                assert!(sizes.iter().all(|&s| 0 < s && s <= cap), "cap {cap} holds for {n}");
                if let (Some(min), Some(max)) = (sizes.iter().min(), sizes.iter().max()) {
                    assert!(max - min <= 1, "sizes for {n} differ by more than one: {sizes:?}");
                }
            }
        }
    }

    #[test]
    fn split_policy_parses_and_falls_back() {
        assert_eq!(SplitPolicy::parse("auto"), SplitPolicy::Auto);
        assert_eq!(SplitPolicy::parse("OFF"), SplitPolicy::Off);
        assert_eq!(SplitPolicy::parse("4"), SplitPolicy::Parts(4));
        assert_eq!(SplitPolicy::parse(" 2 "), SplitPolicy::Parts(2));
        // Garbage (including a zero part count) warns and decays to auto
        // instead of panicking — the TLABP_THREADS contract.
        assert_eq!(SplitPolicy::parse("0"), SplitPolicy::Auto);
        assert_eq!(SplitPolicy::parse("many"), SplitPolicy::Auto);
        assert_eq!(SplitPolicy::try_parse("-3").unwrap_err(), "-3");
    }

    #[test]
    fn split_replay_batch_respects_word_granules() {
        // 40 same-width members = 3 atoms (16 + 16 + 8): a forced part
        // count beyond the atom count clamps to one atom per part, and
        // no part ever holds a fragment of a word.
        let indices: Vec<usize> = (0..40).collect();
        let widths = vec![12u32; 40];
        let parts = split_replay_batch(&indices, &widths, SplitPolicy::Parts(99), 1, None);
        assert_eq!(
            parts.iter().map(Vec::len).collect::<Vec<_>>(),
            vec![16, 16, 8],
            "word-granule atoms"
        );
        let merged: Vec<usize> = parts.concat();
        assert_eq!(merged, indices, "parts partition the batch in plan order");
        // Off leaves the batch whole; so does an auto split on a
        // one-worker pool however big the work is.
        assert_eq!(
            split_replay_batch(&indices, &widths, SplitPolicy::Off, 8, Some(u64::MAX)),
            vec![indices.clone()]
        );
        assert_eq!(
            split_replay_batch(&indices, &widths, SplitPolicy::Auto, 1, Some(u64::MAX)),
            vec![indices.clone()]
        );
    }

    #[test]
    fn split_auto_is_bounded_by_work_workers_and_words() {
        let indices: Vec<usize> = (0..64).collect();
        let widths = vec![10u32; 64];
        // Well under one SPLIT_UNIT of measured work: no split.
        let parts = split_replay_batch(&indices, &widths, SplitPolicy::Auto, 8, Some(1000));
        assert_eq!(parts.len(), 1);
        // Two units of work: two parts even with eight idle workers.
        let parts =
            split_replay_batch(&indices, &widths, SplitPolicy::Auto, 8, Some(2 * SPLIT_UNIT));
        assert_eq!(parts.len(), 2);
        // Unknown stream size: the word cap (64 members = 4 atoms)
        // bounds an eight-worker split.
        let parts = split_replay_batch(&indices, &widths, SplitPolicy::Auto, 8, None);
        assert_eq!(parts.len(), 4);
        // Two workers: the pool bounds it instead.
        let parts = split_replay_batch(&indices, &widths, SplitPolicy::Auto, 2, None);
        assert_eq!(parts.len(), 2);
    }

    #[test]
    fn split_groups_interleaved_widths_into_whole_words() {
        // Alternating widths: members regroup by width before atomizing,
        // so a 2-way split yields two half-word atoms (one per width),
        // not sixteen fragments.
        let indices: Vec<usize> = (0..16).collect();
        let widths: Vec<u32> = (0..16).map(|i| if i % 2 == 0 { 4 } else { 6 }).collect();
        let parts = split_replay_batch(&indices, &widths, SplitPolicy::Parts(2), 1, None);
        assert_eq!(parts.len(), 2);
        assert!(parts[0].iter().all(|&index| index % 2 == 0), "width-4 members stay together");
        assert!(parts[1].iter().all(|&index| index % 2 == 1), "width-6 members stay together");
    }

    #[test]
    fn forced_split_replay_matches_unsplit() {
        // A replay grid (every scheme kind × two automata × two widths)
        // executed unsplit, then under forced part counts on small
        // pools: the merged result sets must be bit-identical — the
        // scatter-merge determinism contract.
        let store = TraceStore::new();
        let plan: Plan = [6u32, 8]
            .iter()
            .flat_map(|&bits| {
                [
                    Job::scheme(SchemeConfig::gag(bits), li()),
                    Job::scheme(SchemeConfig::gag(bits).with_automaton(Automaton::LastTime), li()),
                    Job::scheme(SchemeConfig::pag(bits), li()),
                    Job::scheme(SchemeConfig::pap(bits), li()),
                ]
            })
            .collect();
        let pool = SweepPool::new(2);
        let unsplit = execute_with(
            &pool,
            &plan,
            &store,
            ExecOptions { split: SplitPolicy::Off, ..ExecOptions::default() },
        );
        for parts in [2, 3, 16] {
            let split = execute_with(
                &pool,
                &plan,
                &store,
                ExecOptions { split: SplitPolicy::Parts(parts), ..ExecOptions::default() },
            );
            for index in 0..plan.len() {
                assert_eq!(
                    unsplit.outcome(index),
                    split.outcome(index),
                    "job {index} diverged at {parts} parts"
                );
            }
        }
    }

    /// Fold-class grouping: a grid column's width × automaton variants
    /// land in one replay batch with the widest member's key as
    /// representative, so the whole column is one stream walk.
    #[test]
    fn replay_batches_fold_width_variants_into_one_stream() {
        let plan: Plan = [4u32, 6, 8]
            .iter()
            .flat_map(|&bits| {
                [
                    Job::scheme(SchemeConfig::gag(bits), li()),
                    Job::scheme(SchemeConfig::gag(bits).with_automaton(Automaton::LastTime), li()),
                    Job::scheme(SchemeConfig::pag(bits), li()),
                    Job::scheme(SchemeConfig::pap(bits), li()),
                ]
            })
            .collect();
        let lowered: Vec<Lowered> = plan.jobs().iter().map(lower).collect();
        let partition = partition_batches(&lowered);
        assert!(partition.singles.is_empty());
        assert!(partition.fused.is_empty());
        // One Global fold group (GAg × 2 automata × 3 widths) and one
        // paper-default-BHT fold group (PAg + PAp × 3 widths).
        assert_eq!(partition.replay.len(), 2);
        assert_eq!(partition.replay[0].len(), 6);
        assert_eq!(partition.replay[1].len(), 6);
        for indices in &partition.replay {
            let keys: Vec<StreamKey> = indices
                .iter()
                .map(|&index| match &lowered[index] {
                    Lowered::Run(cell) => cell.replay.expect("replay cell"),
                    Lowered::Skip { .. } => unreachable!(),
                })
                .collect();
            let rep = replay_rep_key(keys.iter().copied());
            assert_eq!(rep.history_bits(), 8, "widest member wins");
            assert!(keys.iter().all(|key| key.fold_key() == rep.fold_key()));
        }
    }

    #[test]
    fn session_stream_yields_plan_order_and_matches_execute() {
        let store = TraceStore::new();
        let plan: Plan = [
            Job::scheme(SchemeConfig::pag(8), li()),
            Job::scheme(SchemeConfig::profiling(), Benchmark::by_name("eqntott").unwrap()),
            Job::scheme(SchemeConfig::gag(10).with_context_switch(true), li()),
            Job::scheme(SchemeConfig::btfn(), li()),
        ]
        .into_iter()
        .collect();
        let blocking = execute(&plan, &store);

        let session = Session::new(store);
        let stream = session.submit(&plan);
        assert_eq!(stream.len(), plan.len());
        let items: Vec<JobItem> = stream.collect();
        assert_eq!(items.len(), plan.len());
        for (position, item) in items.iter().enumerate() {
            assert_eq!(item.index, position, "items arrive in plan order");
            assert_eq!(&item.job, &plan.jobs()[position]);
            assert_eq!(&item.outcome, blocking.outcome(position), "stream matches execute");
        }
    }

    #[test]
    fn session_streams_early_results_before_later_jobs_finish() {
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::Arc;

        registry::register("session-test-fast", || Box::new(tlabp_core::schemes::Btfn::new()));
        let release = Arc::new(AtomicBool::new(false));
        let gate = Arc::clone(&release);
        registry::register("session-test-slow", move || {
            while !gate.load(Ordering::SeqCst) {
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            Box::new(tlabp_core::schemes::Btfn::new())
        });

        // Two singleton tasks on a two-worker pool: job 1's builder
        // blocks until the test observes job 0's streamed item, proving
        // the stream yields incrementally rather than after the sweep.
        let pool = SweepPool::new(2);
        let plan: Plan = [
            Job::custom("session-test-fast", li()).with_fusion(false),
            Job::custom("session-test-slow", li()).with_fusion(false),
        ]
        .into_iter()
        .collect();
        let session = Session::on(&pool, TraceStore::new());
        let mut stream = session.submit(&plan);
        let first = stream.next().expect("first item streams while job 1 is still blocked");
        assert_eq!(first.index, 0);
        assert!(first.outcome.accuracy().is_some());
        release.store(true, Ordering::SeqCst);
        let second = stream.next().expect("second item arrives after release");
        assert_eq!(second.index, 1);
        assert!(stream.next().is_none());
    }

    #[test]
    fn result_set_wire_round_trip_is_lossless() {
        let store = TraceStore::new();
        let plan: Plan = [
            Job::scheme(SchemeConfig::pag(12), li())
                .with_metrics(MetricSet { miss_breakdown: true, fetch: None }),
            Job::scheme(SchemeConfig::profiling(), Benchmark::by_name("eqntott").unwrap()),
            Job::scheme(SchemeConfig::pag(12), li()).with_metrics(MetricSet {
                miss_breakdown: false,
                fetch: Some(TargetCacheSpec::PAPER_DEFAULT),
            }),
            Job::scheme(SchemeConfig::gag(8), li()),
        ]
        .into_iter()
        .collect();
        let results = execute(&plan, &store);
        let text = results.to_json_string();
        let back = ResultSet::from_json_str(&text, &plan).expect("serialized results parse");
        assert_eq!(back, results);
        assert_eq!(back.to_json_string(), text, "re-render is byte-identical");
    }

    #[test]
    fn result_set_wire_decode_rejects_mismatches() {
        let store = TraceStore::new();
        let plan: Plan = [Job::scheme(SchemeConfig::gag(8), li())].into_iter().collect();
        let results = execute(&plan, &store);
        let text = results.to_json_string();

        let wrong_version = text.replacen("\"version\":1", "\"version\":9", 1);
        assert!(ResultSet::from_json_str(&wrong_version, &plan).is_err());

        let other_plan: Plan = [Job::scheme(SchemeConfig::gag(10), li())].into_iter().collect();
        let err = ResultSet::from_json_str(&text, &other_plan).unwrap_err();
        assert!(err.to_string().contains("plan hash"), "{err}");

        assert!(ResultSet::from_json_str("{}", &plan).is_err());
    }

    #[test]
    fn fetch_metric_reports_all_branch_classes() {
        let store = TraceStore::new();
        let plan: Plan = [Job::scheme(SchemeConfig::pag(12), li()).with_metrics(MetricSet {
            miss_breakdown: false,
            fetch: Some(TargetCacheSpec::PAPER_DEFAULT),
        })]
        .into_iter()
        .collect();
        let results = execute(&plan, &store);
        let metrics = results.outcome(0).metrics().expect("measured");
        let fetch = metrics.fetch.expect("fetch stats requested");
        assert!(fetch.branches > metrics.sim.predictions, "all classes > conditionals only");
        assert!(fetch.correct_path <= fetch.branches);
    }
}
