//! The trace-driven simulation loop.

use tlabp_core::any::AnyPredictor;
use tlabp_core::bht::{BhtConfig, BhtCursor, BhtSignature, BranchHistoryTable};
use tlabp_core::config::{SchemeConfig, SchemeKind};
use tlabp_core::history::HistoryRegister;
use tlabp_core::pht::{PackedPht, PackedPhtBank, TransposedLanePhtBank, TransposedPhtBank};
use tlabp_core::predictor::BranchPredictor;
use tlabp_core::simd::SimdMode;
use tlabp_trace::io::ReadTraceError;
use tlabp_trace::{BranchRecord, InternedConds, PackedCond, PatternStream, Trace, TraceEvent};

use crate::stream::StreamCursor;

/// Context-switch simulation parameters (the paper's Section 5.1.4).
///
/// "Whenever a trap occurs in the instruction trace or every 500,000
/// instructions if no trap occurs, a context switch is simulated" — the
/// 500,000 figure derives from a 50 MHz, 1-IPC machine switching every
/// 10 ms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ContextSwitchConfig {
    /// Instructions between forced switches when no trap intervenes.
    pub interval_instructions: u64,
    /// Whether trace trap events trigger switches.
    pub on_traps: bool,
}

impl Default for ContextSwitchConfig {
    fn default() -> Self {
        ContextSwitchConfig { interval_instructions: 500_000, on_traps: true }
    }
}

/// Simulation options.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimConfig {
    /// When `Some`, context switches flush first-level branch history.
    pub context_switch: Option<ContextSwitchConfig>,
}

impl SimConfig {
    /// No context switches (the paper's default measurement mode).
    #[must_use]
    pub fn no_context_switch() -> Self {
        SimConfig { context_switch: None }
    }

    /// The paper's context-switch model (trap-triggered + 500k interval).
    #[must_use]
    pub fn paper_context_switch() -> Self {
        SimConfig { context_switch: Some(ContextSwitchConfig::default()) }
    }
}

/// Result of simulating one predictor over one trace.
#[derive(Debug, Clone, PartialEq)]
pub struct SimResult {
    /// The predictor's configuration name.
    pub scheme: String,
    /// Conditional branches predicted.
    pub predictions: u64,
    /// Predictions that matched the resolved direction.
    pub correct: u64,
    /// Context switches simulated.
    pub context_switches: u64,
}

impl SimResult {
    /// Prediction accuracy in `[0, 1]`; 0 when no branch was predicted.
    #[must_use]
    pub fn accuracy(&self) -> f64 {
        if self.predictions == 0 {
            0.0
        } else {
            self.correct as f64 / self.predictions as f64
        }
    }

    /// Misprediction rate (`1 - accuracy`).
    #[must_use]
    pub fn miss_rate(&self) -> f64 {
        1.0 - self.accuracy()
    }
}

/// Runs `predictor` over every conditional branch of `trace`, honoring
/// the context-switch model of `config`.
///
/// This is the paper's simulation loop: decode (already done by the trace
/// generator), predict, verify against the resolved direction, update.
///
/// # Example
///
/// ```
/// use tlabp_core::config::SchemeConfig;
/// use tlabp_sim::runner::{simulate, SimConfig};
/// use tlabp_trace::synth::LoopNest;
///
/// let trace = LoopNest::new(&[50, 20]).generate();
/// let mut predictor = SchemeConfig::pag(6).build()?;
/// let result = simulate(&mut *predictor, &trace, &SimConfig::default());
/// assert!(result.accuracy() > 0.9);
/// # Ok::<(), tlabp_core::config::BuildError>(())
/// ```
pub fn simulate<P: BranchPredictor + ?Sized>(
    predictor: &mut P,
    trace: &Trace,
    config: &SimConfig,
) -> SimResult {
    let mut result =
        SimResult { scheme: predictor.name(), predictions: 0, correct: 0, context_switches: 0 };
    let mut next_interval_switch = config.context_switch.map(|cs| cs.interval_instructions);

    for event in trace.iter() {
        // Interval-based context switch ("every 500,000 instructions if no
        // trap occurs").
        if let (Some(cs), Some(due)) = (config.context_switch, next_interval_switch) {
            if event.instret() >= due {
                predictor.context_switch();
                result.context_switches += 1;
                next_interval_switch = Some(event.instret() + cs.interval_instructions);
            }
        }
        match event {
            TraceEvent::Branch(branch) if branch.class.is_conditional() => {
                let predicted = predictor.predict(branch);
                predictor.update(branch);
                result.predictions += 1;
                result.correct += u64::from(predicted == branch.taken);
            }
            TraceEvent::Branch(_) => {}
            TraceEvent::Trap(trap) => {
                if let Some(cs) = config.context_switch {
                    if cs.on_traps {
                        predictor.context_switch();
                        result.context_switches += 1;
                        // A trap-triggered switch restarts the interval.
                        next_interval_switch = Some(trap.instret + cs.interval_instructions);
                    }
                }
            }
        }
    }
    result
}

/// Runs `predictor` over a packed conditional-branch stream — the
/// simulator's fast path.
///
/// [`PackedCond`] drops everything a predictor never reads (targets,
/// instruction counts, branch classes, traps), so this loop streams 8
/// bytes per branch instead of a full [`TraceEvent`] and skips the
/// event-kind dispatch entirely. Each branch goes through the fused
/// [`BranchPredictor::step`] (one first-level table lookup instead of
/// the reference path's several); combined with a monomorphized `P`
/// (e.g. [`tlabp_core::any::AnyPredictor`]) the whole step inlines into
/// the loop body.
///
/// Context switches cannot be modeled here: the packed stream has no
/// instruction counts or traps. Callers must fall back to [`simulate`]
/// on the full trace when `SimConfig::context_switch` is set; given
/// that, this function is bit-identical to [`simulate`] with
/// [`SimConfig::no_context_switch`] on the trace the stream was packed
/// from (the differential tests in `tests/differential.rs` assert this
/// for every catalog scheme).
///
/// # Example
///
/// ```
/// use tlabp_core::config::SchemeConfig;
/// use tlabp_sim::runner::simulate_packed;
/// use tlabp_trace::synth::LoopNest;
///
/// let trace = LoopNest::new(&[50, 20]).generate();
/// let packed = trace.pack_conditionals();
/// let mut predictor = SchemeConfig::pag(6).build_any()?;
/// let result = simulate_packed(&mut predictor, &packed);
/// assert!(result.accuracy() > 0.9);
/// # Ok::<(), tlabp_core::config::BuildError>(())
/// ```
pub fn simulate_packed<P: BranchPredictor + ?Sized>(
    predictor: &mut P,
    conditionals: &[PackedCond],
) -> SimResult {
    let mut correct = 0u64;
    for cond in conditionals {
        let branch = cond.to_record();
        let predicted = predictor.step(&branch);
        correct += u64::from(predicted == branch.taken);
    }
    SimResult {
        scheme: predictor.name(),
        predictions: conditionals.len() as u64,
        correct,
        context_switches: 0,
    }
}

/// How many interned events one fused chunk decodes at a time.
///
/// Each chunk is decoded into a stack of `(id, BranchRecord)` pairs once
/// and then replayed through every predictor of the batch, so the decode
/// cost and the per-predictor dispatch are amortized over the chunk while
/// the scratch buffer (~12 KiB at 256 events) stays L1-resident. Within a
/// chunk each predictor runs a tight monomorphic loop with its own tables
/// cache-hot.
const FUSE_CHUNK: usize = 256;

/// Runs a batch of predictors over one pc-interned conditional stream in
/// a single pass — the engine's fused sweep path.
///
/// Equivalent to calling [`simulate_packed`] once per predictor on the
/// stream the interning came from, and bit-identical to it (the
/// differential tests pin this for every catalog scheme): the stream
/// expands to the same [`BranchRecord`]s, and
/// [`BranchPredictor::step_interned`] is step with a dense alias for the
/// pc. The fused walk reads and decodes the stream once for the whole
/// batch instead of once per predictor, and hands each predictor whole
/// chunks ([`BranchPredictor::step_interned_block`]) so per-event
/// dispatch collapses to per-chunk dispatch.
///
/// On top of the shared decode, predictors whose first-level tables have
/// equal [`BhtSignature`]s (via [`BranchPredictor::shared_bht`]) are
/// grouped behind one *driver* table: table evolution is outcome-driven,
/// so the driver's per-event `(pattern, cursor)` sequence is exactly
/// what each member's own table would have produced, and the members
/// consume it through [`BranchPredictor::step_shared_block`] without
/// touching their own tables. In a Table 3-style sweep most
/// configurations share the paper-default `BHT(512,4,k)`, so the
/// dominant set-associative search runs once per group instead of once
/// per predictor. Predictors with unique signatures (or none) fall back
/// to the solo [`BranchPredictor::step_interned_block`] walk.
///
/// Like [`simulate_packed`], this models no context switches.
///
/// # Example
///
/// ```
/// use tlabp_core::config::SchemeConfig;
/// use tlabp_sim::runner::simulate_fused;
/// use tlabp_trace::synth::LoopNest;
/// use tlabp_trace::InternedConds;
///
/// let trace = LoopNest::new(&[50, 20]).generate();
/// let interned = InternedConds::from_trace(&trace);
/// let mut batch = vec![
///     SchemeConfig::pag(6).build_any()?,
///     SchemeConfig::gag(8).build_any()?,
/// ];
/// let results = simulate_fused(&mut batch, &interned);
/// assert!(results.iter().all(|r| r.accuracy() > 0.9));
/// # Ok::<(), tlabp_core::config::BuildError>(())
/// ```
pub fn simulate_fused<P: BranchPredictor>(
    predictors: &mut [P],
    interned: &InternedConds,
) -> Vec<SimResult> {
    // Partition the batch: predictors sharing a first-level signature
    // ride one driver table; everyone else (unique signatures included —
    // a driver would only duplicate their own walk) steps solo. Both the
    // group list and the member lists keep first-seen order, so the
    // partition is a pure function of the batch.
    let mut shared: Vec<(BhtSignature, Vec<usize>)> = Vec::new();
    let mut solo: Vec<usize> = Vec::new();
    for (index, predictor) in predictors.iter().enumerate() {
        match predictor.shared_bht() {
            Some(signature) => match shared.iter_mut().find(|(s, _)| *s == signature) {
                Some((_, members)) => members.push(index),
                None => shared.push((signature, vec![index])),
            },
            None => solo.push(index),
        }
    }
    shared.retain_mut(|(_, members)| {
        if members.len() == 1 {
            solo.push(members[0]);
        }
        members.len() > 1
    });
    let mut drivers: Vec<BranchHistoryTable> =
        shared.iter().map(|(signature, _)| signature.build()).collect();

    let mut correct = vec![0u64; predictors.len()];
    let mut block: Vec<(u32, BranchRecord)> = Vec::with_capacity(FUSE_CHUNK);
    let mut patterns: Vec<(usize, BhtCursor)> = Vec::with_capacity(FUSE_CHUNK);
    for chunk in interned.events().chunks(FUSE_CHUNK) {
        block.clear();
        block.extend(chunk.iter().map(|event| (event.id(), interned.record(*event))));
        for &index in &solo {
            correct[index] += predictors[index].step_interned_block(&block);
        }
        for ((_, members), driver) in shared.iter().zip(drivers.iter_mut()) {
            // access → record per event is the exact operation order of
            // the per-cell step loop, so the driver's (pattern, cursor)
            // stream matches each member's own table bit for bit.
            patterns.clear();
            for (id, branch) in &block {
                let (pattern, cursor) = driver.access_pattern_interned(*id, branch.pc);
                driver.record_outcome_at_interned(cursor, *id, branch.taken);
                patterns.push((pattern, cursor));
            }
            for &index in members {
                correct[index] += predictors[index].step_shared_block(&block, &patterns);
            }
        }
    }
    predictors
        .iter()
        .zip(correct)
        .map(|(predictor, correct)| SimResult {
            scheme: predictor.name(),
            predictions: interned.len() as u64,
            correct,
            context_switches: 0,
        })
        .collect()
}

/// Identifies the first-level mechanism a [`PatternStream`] was derived
/// from: a lone global history register, or a branch history table with a
/// specific implementation and geometry.
///
/// Two predictors with the same stream key produce — by construction —
/// exactly the same first-level `(pattern, outcome)` sequence over a given
/// trace, whatever automaton sits in their second level. The key is
/// therefore the cache index for materialized streams.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StreamKey {
    /// A single k-bit global history register (GAg/GSg): the degenerate
    /// signature with no table at all.
    Global {
        /// The history register length `k`.
        history_bits: u32,
    },
    /// A branch history table walk (PAg/PAp/PSg).
    Bht(BhtSignature),
}

impl StreamKey {
    /// The pattern width of streams derived under this key.
    #[must_use]
    pub fn history_bits(self) -> u32 {
        match self {
            StreamKey::Global { history_bits } => history_bits,
            StreamKey::Bht(signature) => signature.history_bits,
        }
    }

    /// Encodes the key as the opaque byte tag stored in v2 artifact
    /// containers (`tlabp-trace::io` holds stream keys as raw bytes — the
    /// trace crate cannot name simulator types). Layout: a one-byte
    /// variant tag (0 = global, 1 = ideal BHT, 2 = cache BHT) followed by
    /// the variant's little-endian fields. The inverse of
    /// [`StreamKey::from_bytes`].
    #[must_use]
    pub fn to_bytes(self) -> Vec<u8> {
        let mut bytes = Vec::with_capacity(21);
        match self {
            StreamKey::Global { history_bits } => {
                bytes.push(0);
                bytes.extend_from_slice(&history_bits.to_le_bytes());
            }
            StreamKey::Bht(BhtSignature { config: BhtConfig::Ideal, history_bits }) => {
                bytes.push(1);
                bytes.extend_from_slice(&history_bits.to_le_bytes());
            }
            StreamKey::Bht(BhtSignature {
                config: BhtConfig::Cache { entries, ways },
                history_bits,
            }) => {
                bytes.push(2);
                bytes.extend_from_slice(&history_bits.to_le_bytes());
                bytes.extend_from_slice(&(entries as u64).to_le_bytes());
                bytes.extend_from_slice(&(ways as u64).to_le_bytes());
            }
        }
        bytes
    }

    /// Decodes a key from its [`StreamKey::to_bytes`] encoding, or `None`
    /// for any malformed input (unknown tag, wrong length, geometry that
    /// does not fit `usize`) — an unrecognized key in a cache file is
    /// skipped, never trusted.
    #[must_use]
    pub fn from_bytes(bytes: &[u8]) -> Option<Self> {
        let (&tag, rest) = bytes.split_first()?;
        let u32_at = |range: std::ops::Range<usize>| {
            rest.get(range).map(|b| u32::from_le_bytes(b.try_into().expect("4 bytes")))
        };
        let usize_at = |range: std::ops::Range<usize>| {
            rest.get(range)
                .map(|b| u64::from_le_bytes(b.try_into().expect("8 bytes")))
                .and_then(|v| usize::try_from(v).ok())
        };
        match tag {
            0 if rest.len() == 4 => Some(StreamKey::Global { history_bits: u32_at(0..4)? }),
            1 if rest.len() == 4 => Some(StreamKey::Bht(BhtSignature {
                config: BhtConfig::Ideal,
                history_bits: u32_at(0..4)?,
            })),
            2 if rest.len() == 20 => Some(StreamKey::Bht(BhtSignature {
                config: BhtConfig::Cache { entries: usize_at(4..12)?, ways: usize_at(12..20)? },
                history_bits: u32_at(0..4)?,
            })),
            _ => None,
        }
    }
}

/// A [`StreamKey`] with the history width erased: the first-level
/// *mechanism* (global register, or a BHT of a specific implementation
/// and geometry) without the register length.
///
/// Two stream keys with the same fold key describe the same first-level
/// walk at different widths — and those walks are *nested*: a history
/// register holds the last `k` outcomes, so the width-`k` pattern at any
/// point is the low `k` bits of the width-`K` pattern (`k ≤ K`) of the
/// same walk. The all-ones initialization and the BHT's initialize-to-
/// ones miss policy preserve this (all-ones at width `k` *is* the low
/// `k` bits of all-ones at width `K`), and BHT entry replacement is
/// driven by addresses alone, never by register contents, so lane
/// selection is width-independent too. A stream derived at the widest
/// width of a fold group therefore serves every member: each event's
/// pattern is masked down to the member's own width (which the
/// transposed bank does for free via its row mask). This is what lets
/// the engine walk one cached stream for an entire width × automaton
/// grid column instead of one stream per width.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FoldKey {
    /// A lone global history register (GAg/GSg), any width.
    Global,
    /// A branch history table walk with this implementation/geometry,
    /// any register width.
    Bht(BhtConfig),
}

impl StreamKey {
    /// This key's width-erased fold class.
    #[must_use]
    pub fn fold_key(self) -> FoldKey {
        match self {
            StreamKey::Global { .. } => FoldKey::Global,
            StreamKey::Bht(signature) => FoldKey::Bht(signature.config),
        }
    }

    /// The same first-level mechanism at a different register width.
    #[must_use]
    pub fn with_history_bits(self, history_bits: u32) -> StreamKey {
        match self {
            StreamKey::Global { .. } => StreamKey::Global { history_bits },
            StreamKey::Bht(signature) => {
                StreamKey::Bht(BhtSignature { config: signature.config, history_bits })
            }
        }
    }
}

/// The stream key a scheme configuration's first level corresponds to, or
/// `None` when the scheme has no (pattern → PHT) second level to replay
/// (BTB, static predictors, profiling).
///
/// Any two configurations mapping to the same key differ only in their
/// second level — automaton choice, PHT initialization, preset bits — and
/// can therefore replay one shared materialized stream.
#[must_use]
pub fn replay_stream_key(config: SchemeConfig) -> Option<StreamKey> {
    match config.kind() {
        SchemeKind::Gag | SchemeKind::Gsg => {
            Some(StreamKey::Global { history_bits: config.history_bits() })
        }
        SchemeKind::Pag | SchemeKind::Psg | SchemeKind::Pap => Some(StreamKey::Bht(BhtSignature {
            config: config.bht().unwrap_or(BhtConfig::PAPER_DEFAULT),
            history_bits: config.history_bits(),
        })),
        SchemeKind::Btb | SchemeKind::AlwaysTaken | SchemeKind::Btfn | SchemeKind::Profiling => {
            None
        }
    }
}

/// Materializes the first-level `(pattern, outcome)` stream for `key` by
/// walking the interned conditional stream once.
///
/// * [`StreamKey::Global`] replays a fresh all-ones history register —
///   the exact walk `Gag::step` performs (pattern read *before* the
///   shift-in), so GAg/GSg replay is bit-identical by construction.
/// * [`StreamKey::Bht`] builds the signature's table and performs the
///   access → record walk of [`simulate_fused`]'s driver loop, in the
///   same operation order; table evolution is outcome-driven, so the
///   emitted patterns match what every same-signature predictor's own
///   table would produce. Each event also records its *lane* — the cache
///   slot the entry resolved to, or the interned id under an ideal BHT —
///   which is the per-address table selector PAp's second level needs.
#[must_use]
pub fn derive_pattern_stream(interned: &InternedConds, key: StreamKey) -> PatternStream {
    match key {
        StreamKey::Global { history_bits } => {
            let mut history = HistoryRegister::all_ones(history_bits);
            let mut stream = PatternStream::with_capacity(history_bits, interned.len(), false);
            for event in interned.events() {
                let taken = event.taken();
                stream.push(history.pattern(), taken);
                history.shift_in(taken);
            }
            stream
        }
        StreamKey::Bht(signature) => {
            let mut driver = signature.build();
            let mut stream =
                PatternStream::with_capacity(signature.history_bits, interned.len(), true);
            for event in interned.events() {
                let id = event.id();
                let taken = event.taken();
                let (pattern, cursor) = driver.access_pattern_interned(id, interned.pc_of(id));
                driver.record_outcome_at_interned(cursor, id, taken);
                let lane = cursor.slot().map_or(id, |slot| slot as u32);
                stream.push_with_lane(pattern, taken, lane);
            }
            stream
        }
    }
}

/// The bit-packed second level a replay walks: one shared table (GAg,
/// PAg, and the GSg/PSg preset assemblies) or one table per stream lane
/// (PAp's per-slot / per-branch pattern tables).
#[derive(Debug, Clone)]
pub enum ReplayPht {
    /// All events index a single pattern history table.
    Single(PackedPht),
    /// Each event indexes the table its lane selects; tables materialize
    /// lazily from the template on first use (a never-touched table is
    /// indistinguishable from a freshly created one).
    PerLane {
        /// The initial-state table cloned for each new lane.
        template: PackedPht,
    },
}

impl ReplayPht {
    /// Extracts the second level of an already-built predictor, or `None`
    /// when the predictor has no replayable second level.
    ///
    /// Building from the *constructed* predictor rather than its config
    /// keeps preset tables (GSg/PSg) intact: the packed table starts from
    /// the exact per-entry states the predictor would run with.
    #[must_use]
    pub fn for_predictor(predictor: &AnyPredictor) -> Option<ReplayPht> {
        match predictor {
            AnyPredictor::Gag(g) => Some(ReplayPht::Single(PackedPht::from_table(g.pht()))),
            AnyPredictor::Pag(p) => Some(ReplayPht::Single(PackedPht::from_table(p.pht()))),
            AnyPredictor::Pap(p) => Some(ReplayPht::PerLane {
                template: PackedPht::new(p.history_bits(), p.automaton()),
            }),
            _ => None,
        }
    }
}

/// Replays `predictor`'s second level over a materialized first-level
/// stream, or returns `None` when the predictor has no replayable second
/// level.
///
/// The caller must hand in a stream derived under the predictor's own
/// [`StreamKey`] (checked by debug assertions on pattern width and
/// lanedness). Given that, the walk is bit-identical to [`simulate`]
/// without context switches — the stream *is* the first level's output,
/// and the packed table transition equals
/// [`tlabp_core::pht::PatternHistoryTable::predict_update`] on all
/// inputs — which `tests/differential.rs` pins for every catalog scheme
/// and every automaton.
///
/// Like the other fast paths, replay models no context switches.
///
/// # Example
///
/// ```
/// use tlabp_core::config::SchemeConfig;
/// use tlabp_sim::runner::{derive_pattern_stream, replay_stream_key, simulate_replay};
/// use tlabp_trace::synth::LoopNest;
/// use tlabp_trace::InternedConds;
///
/// let trace = LoopNest::new(&[50, 20]).generate();
/// let interned = InternedConds::from_trace(&trace);
/// let config = SchemeConfig::pag(6);
/// let stream = derive_pattern_stream(&interned, replay_stream_key(config).unwrap());
/// let predictor = config.build_any()?;
/// let result = simulate_replay(&predictor, &stream).unwrap();
/// assert!(result.accuracy() > 0.9);
/// # Ok::<(), tlabp_core::config::BuildError>(())
/// ```
#[must_use]
pub fn simulate_replay(predictor: &AnyPredictor, stream: &PatternStream) -> Option<SimResult> {
    let correct = match ReplayPht::for_predictor(predictor)? {
        ReplayPht::Single(mut pht) => replay_single(&mut pht, stream),
        ReplayPht::PerLane { template } => replay_per_lane(&template, stream),
    };
    Some(SimResult {
        scheme: predictor.name(),
        predictions: stream.len() as u64,
        correct,
        context_switches: 0,
    })
}

/// [`simulate_replay`] for a whole batch sharing one stream, in one pass:
/// every event is decoded once and pushed through each member's packed
/// table back to back, with the members' tables interleaved into one
/// allocation ([`PackedPhtBank`]) so the batch's per-event traffic is
/// contiguous instead of scattered across per-table buffers.
///
/// Returns `None` (and replays nobody) unless every member has a
/// replayable second level. All members must be sized for the stream's
/// pattern width — the same contract as [`simulate_replay`], which the
/// engine guarantees by grouping batches per [`StreamKey`]. Per-lane
/// members (PAp) take their own pass: their per-event table selection
/// doesn't interleave with the shared single-table walk.
#[must_use]
pub fn simulate_replay_many(
    predictors: &[AnyPredictor],
    stream: &PatternStream,
) -> Option<Vec<SimResult>> {
    let phts: Vec<ReplayPht> =
        predictors.iter().map(ReplayPht::for_predictor).collect::<Option<_>>()?;
    let mut corrects = vec![0u64; phts.len()];
    let mut single_indices: Vec<usize> = Vec::new();
    let mut single_tables: Vec<PackedPht> = Vec::new();
    for (index, pht) in phts.into_iter().enumerate() {
        match pht {
            ReplayPht::Single(pht) => {
                single_indices.push(index);
                single_tables.push(pht);
            }
            ReplayPht::PerLane { template } => {
                corrects[index] = replay_per_lane(&template, stream);
            }
        }
    }
    match single_tables.as_mut_slice() {
        [] => {}
        [pht] => corrects[single_indices[0]] = replay_single(pht, stream),
        _ => {
            let mut bank = PackedPhtBank::new(&single_tables);
            debug_assert_eq!(bank.history_bits(), stream.history_bits());
            let banked = replay_bank(&mut bank, stream);
            for (member, &index) in single_indices.iter().enumerate() {
                corrects[index] = banked[member];
            }
        }
    }
    Some(
        predictors
            .iter()
            .zip(corrects)
            .map(|(predictor, correct)| SimResult {
                scheme: predictor.name(),
                predictions: stream.len() as u64,
                correct,
                context_switches: 0,
            })
            .collect(),
    )
}

/// Events per block of the transposed walk: 2<sup>14</sup> events is a
/// 64 KiB slice of the stream (plus 64 KiB of lanes when laned), so when
/// several width-banks walk the same stream the slice stays cache-hot
/// across all of them instead of streaming the full multi-megabyte
/// buffer once per bank.
const REPLAY_BLOCK: usize = 1 << 14;

/// The transposed, SWAR-vectorized form of [`simulate_replay_many`]:
/// walks one materialized stream once, updating every member's
/// bit-sliced second level in the same pass through
/// [`TransposedPhtBank`] / [`TransposedLanePhtBank`].
///
/// Members are grouped by PHT width — one transposed bank per distinct
/// width — and widths *narrower than the stream* are welcome: each
/// bank masks event patterns down to its own row index, which is exactly
/// the width fold [`StreamKey::fold_key`] justifies. The engine uses
/// this to replay an entire width × automaton grid column (e.g. GAg(6),
/// GAg(8), … GAg(12) across all five automata) over the single stream
/// derived at the column's widest width. Banks walk the stream in
/// [`REPLAY_BLOCK`]-event slices, interleaved, so the slice is read from
/// cache by every bank after the first.
///
/// Returns `None` (and replays nobody) unless every member has a
/// replayable second level; members wider than the stream are a caller
/// bug (debug-asserted). Per-lane members (PAp) additionally require a
/// laned stream. Bit-identical to per-member [`simulate_replay`] on the
/// member's own-width stream for every kernel `mode` — pinned by
/// `tests/differential.rs`.
#[must_use]
pub fn simulate_replay_transposed(
    predictors: &[AnyPredictor],
    stream: &PatternStream,
    mode: SimdMode,
) -> Option<Vec<SimResult>> {
    let mut banks = TransposedBanks::build(predictors, stream.history_bits(), stream.is_laned())?;
    banks.feed(stream.events(), stream.lanes(), mode);
    Some(banks.results(predictors, stream.len() as u64))
}

/// The streaming form of [`simulate_replay_transposed`]: walks a
/// persisted stream chunk-by-chunk through a [`StreamCursor`] instead
/// of a hydrated [`PatternStream`], so resident bytes stay bounded by
/// the cursor's window while the cursor's decode thread reads ahead.
///
/// Bit-identical to the in-memory form: replay is a left fold over the
/// event sequence (banks carry their state across feeds and never
/// interact), so any order-preserving chunking yields the same counts —
/// and the v3 writer additionally aligns stream chunks to
/// [`REPLAY_BLOCK`], so even the interleaved block walk matches.
///
/// Returns `None` (before reading anything) unless every member has a
/// replayable second level, `Some(Err(..))` if the artifact turns out
/// corrupt or short mid-stream, and `Some(Ok(results))` otherwise.
#[must_use]
pub fn simulate_replay_transposed_streamed(
    predictors: &[AnyPredictor],
    cursor: &mut StreamCursor,
    mode: SimdMode,
) -> Option<Result<Vec<SimResult>, ReadTraceError>> {
    let mut banks = TransposedBanks::build(predictors, cursor.history_bits(), cursor.laned())?;
    let mut fed = 0u64;
    while let Some(next) = cursor.next_chunk() {
        match next {
            Ok(chunk) => {
                fed += chunk.events().len() as u64;
                banks.feed(chunk.events(), chunk.lanes(), mode);
            }
            Err(error) => return Some(Err(error)),
        }
    }
    if fed != cursor.events() {
        return Some(Err(ReadTraceError::Truncated { at_event: fed }));
    }
    Some(Ok(banks.results(predictors, fed)))
}

/// The width-grouped transposed bank state shared by
/// [`simulate_replay_transposed`] and
/// [`simulate_replay_transposed_streamed`]: build once per batch, feed
/// any order-preserving sequence of event slices, then assemble the
/// per-member results.
struct TransposedBanks {
    single_banks: Vec<(Vec<usize>, TransposedPhtBank)>,
    lane_banks: Vec<(Vec<usize>, TransposedLanePhtBank)>,
}

impl TransposedBanks {
    /// Groups member tables by width, preserving first-seen order so
    /// the result assembly is a pure function of the batch. `None`
    /// unless every member has a replayable second level.
    fn build(predictors: &[AnyPredictor], history_bits: u32, stream_laned: bool) -> Option<Self> {
        struct WidthGroup {
            history_bits: u32,
            indices: Vec<usize>,
            tables: Vec<PackedPht>,
        }
        fn insert(groups: &mut Vec<WidthGroup>, index: usize, table: PackedPht) {
            let history_bits = table.history_bits();
            match groups.iter_mut().find(|g| g.history_bits == history_bits) {
                Some(group) => {
                    group.indices.push(index);
                    group.tables.push(table);
                }
                None => groups.push(WidthGroup {
                    history_bits,
                    indices: vec![index],
                    tables: vec![table],
                }),
            }
        }
        let mut singles: Vec<WidthGroup> = Vec::new();
        let mut laned: Vec<WidthGroup> = Vec::new();
        for (index, predictor) in predictors.iter().enumerate() {
            match ReplayPht::for_predictor(predictor)? {
                ReplayPht::Single(table) => insert(&mut singles, index, table),
                ReplayPht::PerLane { template } => insert(&mut laned, index, template),
            }
        }
        debug_assert!(laned.is_empty() || stream_laned, "per-lane replay needs a laned stream");
        let single_banks = singles
            .into_iter()
            .map(|group| {
                debug_assert!(group.history_bits <= history_bits, "member wider than stream");
                (group.indices, TransposedPhtBank::new(&group.tables))
            })
            .collect();
        let lane_banks = laned
            .into_iter()
            .map(|group| {
                debug_assert!(group.history_bits <= history_bits, "member wider than stream");
                (group.indices, TransposedLanePhtBank::new(&group.tables))
            })
            .collect();
        Some(TransposedBanks { single_banks, lane_banks })
    }

    /// Feeds one contiguous slice of the stream to every bank,
    /// interleaved in [`REPLAY_BLOCK`]-event sub-blocks so the slice
    /// stays cache-hot across banks. `lanes` is ignored (and may be
    /// empty) when no member is per-lane.
    fn feed(&mut self, events: &[u32], lanes: &[u32], mode: SimdMode) {
        if self.lane_banks.is_empty() {
            for block in events.chunks(REPLAY_BLOCK) {
                for (_, bank) in &mut self.single_banks {
                    bank.replay(block, mode);
                }
            }
        } else {
            let blocks = events.chunks(REPLAY_BLOCK).zip(lanes.chunks(REPLAY_BLOCK));
            for (events, lanes) in blocks {
                for (_, bank) in &mut self.single_banks {
                    bank.replay(events, mode);
                }
                for (_, bank) in &mut self.lane_banks {
                    bank.replay(events, lanes, mode);
                }
            }
        }
    }

    /// Collects each member's correct count back into batch order.
    fn results(self, predictors: &[AnyPredictor], predictions: u64) -> Vec<SimResult> {
        let mut corrects = vec![0u64; predictors.len()];
        for (indices, bank) in &self.single_banks {
            for (member, &index) in indices.iter().enumerate() {
                corrects[index] = bank.counts()[member];
            }
        }
        for (indices, bank) in &self.lane_banks {
            for (member, &index) in indices.iter().enumerate() {
                corrects[index] = bank.counts()[member];
            }
        }
        predictors
            .iter()
            .zip(corrects)
            .map(|(predictor, correct)| SimResult {
                scheme: predictor.name(),
                predictions,
                correct,
                context_switches: 0,
            })
            .collect()
    }
}

/// Walks an interleaved bank over the stream; returns each member's
/// correct-prediction count in member order. Common batch widths
/// dispatch to a monomorphized walk whose member loop is fully unrolled;
/// anything wider falls back to the dynamic loop.
fn replay_bank(bank: &mut PackedPhtBank, stream: &PatternStream) -> Vec<u64> {
    fn fixed<const N: usize>(bank: &mut PackedPhtBank, stream: &PatternStream) -> Vec<u64> {
        let mut corrects = [0u64; N];
        for &event in stream.events() {
            let taken = PatternStream::event_taken(event);
            bank.predict_update_count_fixed(
                PatternStream::event_pattern(event),
                taken,
                &mut corrects,
            );
        }
        corrects.to_vec()
    }
    match bank.members() {
        2 => fixed::<2>(bank, stream),
        3 => fixed::<3>(bank, stream),
        4 => fixed::<4>(bank, stream),
        5 => fixed::<5>(bank, stream),
        6 => fixed::<6>(bank, stream),
        7 => fixed::<7>(bank, stream),
        8 => fixed::<8>(bank, stream),
        members => {
            let mut corrects = vec![0u64; members];
            for &event in stream.events() {
                let taken = PatternStream::event_taken(event);
                bank.predict_update_count(
                    PatternStream::event_pattern(event),
                    taken,
                    &mut corrects,
                );
            }
            corrects
        }
    }
}

/// Walks one shared packed table over the stream; returns the number of
/// correct predictions.
fn replay_single(pht: &mut PackedPht, stream: &PatternStream) -> u64 {
    debug_assert_eq!(pht.history_bits(), stream.history_bits());
    let mut correct = 0u64;
    for &event in stream.events() {
        let taken = PatternStream::event_taken(event);
        let predicted = pht.predict_update(PatternStream::event_pattern(event), taken);
        correct += u64::from(predicted == taken);
    }
    correct
}

/// Walks lane-selected packed tables over the stream, materializing each
/// lane's table from the template on first use; returns the number of
/// correct predictions.
fn replay_per_lane(template: &PackedPht, stream: &PatternStream) -> u64 {
    debug_assert_eq!(template.history_bits(), stream.history_bits());
    debug_assert!(stream.is_laned(), "per-lane replay needs a BHT-derived stream");
    let mut correct = 0u64;
    let mut tables: Vec<PackedPht> = Vec::new();
    for (&event, &lane) in stream.events().iter().zip(stream.lanes()) {
        let lane = lane as usize;
        if lane >= tables.len() {
            tables.resize(lane + 1, template.clone());
        }
        let taken = PatternStream::event_taken(event);
        let predicted = tables[lane].predict_update(PatternStream::event_pattern(event), taken);
        correct += u64::from(predicted == taken);
    }
    correct
}

#[cfg(test)]
mod tests {
    use super::*;
    use tlabp_core::automaton::Automaton;
    use tlabp_core::bht::BhtConfig;
    use tlabp_core::schemes::Pag;
    use tlabp_trace::synth::{LoopNest, RepeatingPattern};
    use tlabp_trace::{BranchRecord, TrapRecord};

    #[test]
    fn counts_only_conditional_branches() {
        let mut trace = Trace::new();
        trace.push(BranchRecord::conditional(0x10, true, 0x4, 1));
        trace.push(BranchRecord::unconditional(0x20, tlabp_trace::BranchClass::Call, 0x100, 2));
        trace.push(TrapRecord::new(0x104, 3));
        let mut p = Pag::new(4, BhtConfig::PAPER_DEFAULT, Automaton::A2);
        let result = simulate(&mut p, &trace, &SimConfig::no_context_switch());
        assert_eq!(result.predictions, 1);
        assert_eq!(result.context_switches, 0);
    }

    #[test]
    fn perfect_on_learnable_pattern() {
        let trace = RepeatingPattern::new(&[true, true, false], 500).generate();
        let mut p = Pag::new(6, BhtConfig::PAPER_DEFAULT, Automaton::A2);
        let result = simulate(&mut p, &trace, &SimConfig::default());
        // Warm-up mispredictions only.
        assert!(result.accuracy() > 0.97, "accuracy {}", result.accuracy());
    }

    #[test]
    fn trap_triggers_context_switch() {
        let mut trace = Trace::new();
        trace.push(BranchRecord::conditional(0x10, true, 0x4, 1));
        trace.push(TrapRecord::new(0x20, 2));
        trace.push(BranchRecord::conditional(0x10, true, 0x4, 3));
        let mut p = Pag::new(4, BhtConfig::PAPER_DEFAULT, Automaton::A2);
        let result = simulate(&mut p, &trace, &SimConfig::paper_context_switch());
        assert_eq!(result.context_switches, 1);
    }

    #[test]
    fn interval_triggers_context_switch() {
        let mut trace = Trace::new();
        for i in 0..10u64 {
            trace.push(BranchRecord::conditional(0x10, true, 0x4, i * 300_000 + 1));
        }
        let mut p = Pag::new(4, BhtConfig::PAPER_DEFAULT, Automaton::A2);
        let result = simulate(&mut p, &trace, &SimConfig::paper_context_switch());
        // Events at 1, 300_001, ..., 2_700_001: switches due at 500k,
        // then ~800k(+500k after firing at 900_001)... at least 4 fire.
        assert!(
            (4..=6).contains(&result.context_switches),
            "switches: {}",
            result.context_switches
        );
    }

    #[test]
    fn context_switches_hurt_accuracy_on_per_address_schemes() {
        // Dense traps: flush the BHT constantly.
        let mut trace = Trace::new();
        let pattern = [true, true, false];
        let mut instret = 0;
        for i in 0..3000u64 {
            instret += 4;
            trace.push(BranchRecord::conditional(0x40, pattern[(i % 3) as usize], 0x10, instret));
            if i % 10 == 9 {
                instret += 1;
                trace.push(TrapRecord::new(0x80, instret));
            }
        }
        let accuracy = |cfg: &SimConfig| {
            let mut p = Pag::new(6, BhtConfig::PAPER_DEFAULT, Automaton::A2);
            simulate(&mut p, &trace, cfg).accuracy()
        };
        let without = accuracy(&SimConfig::no_context_switch());
        let with = accuracy(&SimConfig::paper_context_switch());
        assert!(with < without, "flushing must hurt: with={with} without={without}");
    }

    #[test]
    fn accuracy_of_empty_trace_is_zero() {
        let mut p = Pag::new(4, BhtConfig::PAPER_DEFAULT, Automaton::A2);
        let result = simulate(&mut p, &Trace::new(), &SimConfig::default());
        assert_eq!(result.accuracy(), 0.0);
        assert_eq!(result.miss_rate(), 1.0);
    }

    #[test]
    fn fused_batch_matches_packed_per_predictor() {
        use tlabp_core::config::SchemeConfig;
        use tlabp_trace::synth::MarkovBranches;
        use tlabp_trace::InternedConds;

        let trace = MarkovBranches::new(16, 0.85, 3000, 23).generate();
        let packed = trace.pack_conditionals();
        let interned = InternedConds::from_packed(&packed);
        // A batch larger than one chunk's worth of variety: ideal and
        // cache BHTs, per-address tables, static schemes — including two
        // shared-BHT groups, each spanning schemes (PAg + PAp on the
        // cache geometry BHT(512,4,8); PAg + PAp on the ideal table at 12
        // bits), plus signature-less and singleton-signature predictors.
        let configs = [
            SchemeConfig::pag(8),
            SchemeConfig::pag(8).with_automaton(tlabp_core::automaton::Automaton::A3),
            SchemeConfig::pap(8),
            SchemeConfig::pag(12).with_bht(tlabp_core::bht::BhtConfig::Ideal),
            SchemeConfig::pap(12).with_bht(tlabp_core::bht::BhtConfig::Ideal),
            SchemeConfig::pap(6),
            SchemeConfig::gag(10),
            SchemeConfig::btfn(),
        ];
        let mut batch: Vec<_> = configs.iter().map(|c| c.build_any().expect("builds")).collect();
        let fused = simulate_fused(&mut batch, &interned);
        for (config, fused_result) in configs.iter().zip(&fused) {
            let mut alone = config.build_any().expect("builds");
            let packed_result = simulate_packed(&mut alone, &packed);
            assert_eq!(fused_result, &packed_result, "{config}");
        }
    }

    #[test]
    fn fused_batch_on_empty_stream_reports_zero_predictions() {
        use tlabp_core::config::SchemeConfig;
        use tlabp_trace::InternedConds;
        let mut batch = vec![SchemeConfig::gag(6).build_any().expect("builds")];
        let results = simulate_fused(&mut batch, &InternedConds::default());
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].predictions, 0);
        assert_eq!(results[0].accuracy(), 0.0);
    }

    #[test]
    fn replay_matches_packed_for_every_stream_key_scheme() {
        use tlabp_core::config::SchemeConfig;
        use tlabp_trace::synth::MarkovBranches;
        use tlabp_trace::InternedConds;

        let trace = MarkovBranches::new(24, 0.8, 4000, 7).generate();
        let packed = trace.pack_conditionals();
        let interned = InternedConds::from_packed(&packed);
        let configs = [
            SchemeConfig::gag(8),
            SchemeConfig::pag(8),
            SchemeConfig::pag(8).with_automaton(Automaton::LastTime),
            SchemeConfig::pap(6),
            SchemeConfig::pap(10).with_bht(BhtConfig::Ideal),
        ];
        for config in configs {
            let key = replay_stream_key(config).expect("two-level scheme");
            let stream = derive_pattern_stream(&interned, key);
            assert_eq!(stream.len(), interned.len());
            let predictor = config.build_any().expect("builds");
            let replayed = simulate_replay(&predictor, &stream).expect("replayable");
            let mut alone = config.build_any().expect("builds");
            let reference = simulate_packed(&mut alone, &packed);
            assert_eq!(replayed, reference, "{config}");
        }
    }

    #[test]
    fn schemes_without_second_level_have_no_stream_key() {
        use tlabp_core::config::SchemeConfig;
        assert!(replay_stream_key(SchemeConfig::btfn()).is_none());
        assert!(replay_stream_key(SchemeConfig::always_taken()).is_none());
        assert!(replay_stream_key(SchemeConfig::btb(Automaton::A2)).is_none());
        let predictor = SchemeConfig::btfn().build_any().expect("builds");
        let stream = PatternStream::new(4, false);
        assert!(simulate_replay(&predictor, &stream).is_none());
    }

    #[test]
    fn same_key_configs_share_one_stream() {
        use tlabp_core::config::SchemeConfig;
        let pag = replay_stream_key(SchemeConfig::pag(12)).unwrap();
        let pap = replay_stream_key(SchemeConfig::pap(12)).unwrap();
        let psg = replay_stream_key(SchemeConfig::psg(12)).unwrap();
        assert_eq!(pag, pap);
        assert_eq!(pag, psg);
        let gag = replay_stream_key(SchemeConfig::gag(12)).unwrap();
        let gsg = replay_stream_key(SchemeConfig::gsg(12)).unwrap();
        assert_eq!(gag, gsg);
        assert_ne!(gag, pag);
        assert_ne!(pag, replay_stream_key(SchemeConfig::pag(10)).unwrap());
        assert_ne!(
            pag,
            replay_stream_key(SchemeConfig::pag(12).with_bht(BhtConfig::Ideal)).unwrap()
        );
    }

    #[test]
    fn stream_key_bytes_round_trip_and_reject_garbage() {
        let keys = [
            StreamKey::Global { history_bits: 18 },
            StreamKey::Bht(BhtSignature { config: BhtConfig::Ideal, history_bits: 6 }),
            StreamKey::Bht(BhtSignature { config: BhtConfig::PAPER_DEFAULT, history_bits: 12 }),
            StreamKey::Bht(BhtSignature {
                config: BhtConfig::Cache { entries: 256, ways: 1 },
                history_bits: 24,
            }),
        ];
        let mut encodings = std::collections::HashSet::new();
        for key in keys {
            let bytes = key.to_bytes();
            assert_eq!(StreamKey::from_bytes(&bytes), Some(key));
            assert!(encodings.insert(bytes), "{key:?}: encoding collides");
        }
        assert_eq!(StreamKey::from_bytes(&[]), None);
        assert_eq!(StreamKey::from_bytes(&[9, 0, 0, 0, 0]), None);
        assert_eq!(StreamKey::from_bytes(&[0, 0, 0, 0]), None, "short global");
        let mut long = StreamKey::Global { history_bits: 4 }.to_bytes();
        long.push(0);
        assert_eq!(StreamKey::from_bytes(&long), None, "trailing byte");
    }

    #[test]
    fn fold_keys_erase_width_and_nothing_else() {
        use tlabp_core::config::SchemeConfig;
        let gag8 = replay_stream_key(SchemeConfig::gag(8)).unwrap();
        let gag12 = replay_stream_key(SchemeConfig::gag(12)).unwrap();
        assert_eq!(gag8.fold_key(), gag12.fold_key());
        assert_eq!(gag8.with_history_bits(12), gag12);
        let pag8 = replay_stream_key(SchemeConfig::pag(8)).unwrap();
        let pag12 = replay_stream_key(SchemeConfig::pag(12)).unwrap();
        assert_eq!(pag8.fold_key(), pag12.fold_key());
        assert_eq!(pag8.with_history_bits(12), pag12);
        assert_ne!(gag8.fold_key(), pag8.fold_key());
        let ideal = replay_stream_key(SchemeConfig::pag(8).with_bht(BhtConfig::Ideal)).unwrap();
        assert_ne!(pag8.fold_key(), ideal.fold_key());
        assert_eq!(ideal.history_bits(), ideal.with_history_bits(8).history_bits());
    }

    /// The width fold itself: a stream derived at width `K` carries, per
    /// event, the width-`k` pattern in its low `k` bits, and identical
    /// lanes — for both fold classes.
    #[test]
    fn wider_streams_embed_narrower_streams() {
        use tlabp_trace::synth::MarkovBranches;
        use tlabp_trace::InternedConds;
        let trace = MarkovBranches::new(24, 0.8, 4000, 11).generate();
        let interned = InternedConds::from_packed(&trace.pack_conditionals());
        let keys = [
            StreamKey::Global { history_bits: 12 },
            StreamKey::Bht(BhtSignature { config: BhtConfig::PAPER_DEFAULT, history_bits: 12 }),
            StreamKey::Bht(BhtSignature { config: BhtConfig::Ideal, history_bits: 12 }),
        ];
        for wide_key in keys {
            let wide = derive_pattern_stream(&interned, wide_key);
            let narrow = derive_pattern_stream(&interned, wide_key.with_history_bits(6));
            assert_eq!(wide.len(), narrow.len());
            let mask = (1u32 << 6) - 1;
            for (&wide_event, &narrow_event) in wide.events().iter().zip(narrow.events()) {
                let folded = ((PatternStream::event_pattern(wide_event) as u32 & mask) << 1)
                    | u32::from(PatternStream::event_taken(wide_event));
                assert_eq!(folded, narrow_event, "{wide_key:?}");
            }
            if wide.is_laned() {
                assert_eq!(wide.lanes(), narrow.lanes(), "{wide_key:?}");
            }
        }
    }

    /// Transposed replay over a *wider* shared stream must equal each
    /// member's own-width replay — the fold group contract.
    #[test]
    fn transposed_replay_matches_per_member_replay_across_widths() {
        use tlabp_core::config::SchemeConfig;
        use tlabp_core::SimdMode;
        use tlabp_trace::synth::MarkovBranches;
        use tlabp_trace::InternedConds;

        let trace = MarkovBranches::new(24, 0.8, 5000, 3).generate();
        let interned = InternedConds::from_packed(&trace.pack_conditionals());
        let cases: [(&[SchemeConfig], StreamKey); 2] = [
            (
                &[
                    SchemeConfig::gag(6),
                    SchemeConfig::gag(10),
                    SchemeConfig::gag(10).with_automaton(Automaton::LastTime),
                    SchemeConfig::gag(8).with_automaton(Automaton::A3),
                ],
                StreamKey::Global { history_bits: 10 },
            ),
            (
                &[
                    SchemeConfig::pag(6),
                    SchemeConfig::pag(10),
                    SchemeConfig::pap(6),
                    SchemeConfig::pap(10).with_automaton(Automaton::A4),
                    SchemeConfig::pag(8).with_automaton(Automaton::A1),
                ],
                StreamKey::Bht(BhtSignature { config: BhtConfig::PAPER_DEFAULT, history_bits: 10 }),
            ),
        ];
        for (configs, rep_key) in cases {
            let shared = derive_pattern_stream(&interned, rep_key);
            let predictors: Vec<AnyPredictor> =
                configs.iter().map(|c| c.build_any().expect("builds")).collect();
            for mode in [SimdMode::Auto, SimdMode::Swar, SimdMode::Scalar] {
                let transposed =
                    simulate_replay_transposed(&predictors, &shared, mode).expect("replayable");
                for (config, result) in configs.iter().zip(&transposed) {
                    let own_key = replay_stream_key(*config).expect("two-level");
                    assert_eq!(own_key.fold_key(), rep_key.fold_key());
                    let own_stream = derive_pattern_stream(&interned, own_key);
                    let predictor = config.build_any().expect("builds");
                    let own = simulate_replay(&predictor, &own_stream).expect("replayable");
                    assert_eq!(result, &own, "{config} under {mode:?}");
                }
            }
        }
    }

    #[test]
    fn transposed_replay_refuses_non_replayable_members() {
        use tlabp_core::config::SchemeConfig;
        use tlabp_core::SimdMode;
        let predictors = vec![
            SchemeConfig::gag(6).build_any().expect("builds"),
            SchemeConfig::btfn().build_any().expect("builds"),
        ];
        let stream = PatternStream::new(6, false);
        assert!(simulate_replay_transposed(&predictors, &stream, SimdMode::Auto).is_none());
    }

    #[test]
    fn result_carries_scheme_name() {
        let trace = LoopNest::new(&[4]).generate();
        let mut p = Pag::new(4, BhtConfig::PAPER_DEFAULT, Automaton::A2);
        let result = simulate(&mut p, &trace, &SimConfig::default());
        assert!(result.scheme.starts_with("PAg("));
    }
}
