//! Whole-suite orchestration: run predictor configurations across all
//! nine benchmarks, with trace caching and pooled parallel execution.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock, RwLock};

use tlabp_core::config::SchemeConfig;
use tlabp_trace::{InternedConds, PackedCond, PatternStream, Trace};
use tlabp_workloads::{Benchmark, DataSet};

use crate::metrics::SuiteResult;
use crate::runner::{derive_pattern_stream, SimConfig, StreamKey};
use crate::sweep::run_sweep;

/// A cache of generated benchmark traces.
///
/// Workload generation (running the mini-RISC VM) is deterministic but
/// not free; the store generates each (benchmark, data set) trace once
/// and shares it across every scheme evaluation. Cloning the store is
/// cheap and shares the cache, so sweep cells on other threads can hold
/// their own handle.
///
/// Each cache slot initializes through its own [`OnceLock`]: when many
/// sweep cells ask for the same ungenerated trace at once, exactly one
/// thread runs the VM while the rest block on that slot — the map locks
/// are only ever held to find or insert the (empty) slot, never during
/// generation.
#[derive(Debug, Clone, Default)]
pub struct TraceStore {
    cache: Arc<RwLock<SlotMap>>,
}

type SlotMap = HashMap<(&'static str, DataSetKey), Arc<TraceSlot>>;

#[derive(Debug, Default)]
struct TraceSlot {
    trace: OnceLock<Arc<Trace>>,
    packed: OnceLock<Arc<Vec<PackedCond>>>,
    interned: OnceLock<Arc<InternedConds>>,
    // One materialized first-level stream per StreamKey. The mutex guards
    // only the map (find or insert the cell); each cell's derivation runs
    // behind its own OnceLock, exactly like the three fixed forms above.
    streams: Mutex<HashMap<StreamKey, Arc<OnceLock<Arc<PatternStream>>>>>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum DataSetKey {
    Training,
    Testing,
}

impl From<DataSet> for DataSetKey {
    fn from(ds: DataSet) -> Self {
        match ds {
            DataSet::Training => DataSetKey::Training,
            DataSet::Testing => DataSetKey::Testing,
        }
    }
}

impl TraceStore {
    /// Creates an empty store.
    #[must_use]
    pub fn new() -> Self {
        TraceStore::default()
    }

    /// Returns the trace for `(benchmark, data_set)`, generating it on
    /// first use. Concurrent callers for the same key block until the
    /// single generating thread finishes.
    #[must_use]
    pub fn get(&self, benchmark: &Benchmark, data_set: DataSet) -> Arc<Trace> {
        let slot = self.slot(benchmark.name(), data_set.into());
        Arc::clone(slot.trace.get_or_init(|| Arc::new(benchmark.trace(data_set))))
    }

    /// Returns the packed conditional-branch stream for
    /// `(benchmark, data_set)` — the input of
    /// [`crate::runner::simulate_packed`] — packing it on first use.
    #[must_use]
    pub fn get_packed(&self, benchmark: &Benchmark, data_set: DataSet) -> Arc<Vec<PackedCond>> {
        let slot = self.slot(benchmark.name(), data_set.into());
        let trace = Arc::clone(slot.trace.get_or_init(|| Arc::new(benchmark.trace(data_set))));
        Arc::clone(slot.packed.get_or_init(|| Arc::new(trace.pack_conditionals())))
    }

    /// Returns the pc-interned conditional stream for
    /// `(benchmark, data_set)` — the input of
    /// [`crate::runner::simulate_fused`] — interning it on first use.
    ///
    /// All three forms (trace, packed, interned) share one slot, each
    /// behind its own `OnceLock`, so every derivation happens exactly
    /// once per key however many cells race for it.
    #[must_use]
    pub fn get_interned(&self, benchmark: &Benchmark, data_set: DataSet) -> Arc<InternedConds> {
        let slot = self.slot(benchmark.name(), data_set.into());
        let trace = Arc::clone(slot.trace.get_or_init(|| Arc::new(benchmark.trace(data_set))));
        let packed = slot.packed.get_or_init(|| Arc::new(trace.pack_conditionals()));
        Arc::clone(slot.interned.get_or_init(|| Arc::new(InternedConds::from_packed(packed))))
    }

    /// Returns the materialized first-level stream for
    /// `(benchmark, data_set, key)` — the input of
    /// [`crate::runner::simulate_replay`] — deriving it on first use.
    ///
    /// The fourth cached form, keyed per first-level [`StreamKey`] rather
    /// than only per trace. The derivation chains through the interned
    /// stream (and thus the packed stream and the trace), each stage
    /// behind its own `OnceLock`, so every derivation happens exactly once
    /// per key however many replay cells race for it.
    #[must_use]
    pub fn get_pattern_stream(
        &self,
        benchmark: &Benchmark,
        data_set: DataSet,
        key: StreamKey,
    ) -> Arc<PatternStream> {
        let slot = self.slot(benchmark.name(), data_set.into());
        let cell = {
            let mut streams = slot.streams.lock().expect("stream map lock");
            Arc::clone(streams.entry(key).or_default())
        };
        if let Some(stream) = cell.get() {
            return Arc::clone(stream);
        }
        let interned = self.get_interned(benchmark, data_set);
        Arc::clone(cell.get_or_init(|| Arc::new(derive_pattern_stream(&interned, key))))
    }

    /// Heap bytes currently held by each cached trace form, across every
    /// slot in the store.
    #[must_use]
    pub fn cache_bytes(&self) -> CacheBytes {
        let mut bytes = CacheBytes::default();
        for slot in self.cache.read().expect("trace store lock").values() {
            if let Some(packed) = slot.packed.get() {
                bytes.packed += packed.len() * std::mem::size_of::<PackedCond>();
            }
            if let Some(interned) = slot.interned.get() {
                bytes.interned += interned.len() * 4 + interned.distinct_pcs() * 8;
            }
            for cell in slot.streams.lock().expect("stream map lock").values() {
                if let Some(stream) = cell.get() {
                    bytes.streams += stream.bytes();
                }
            }
        }
        bytes
    }

    /// Finds or inserts the (possibly uninitialized) slot for a key.
    fn slot(&self, name: &'static str, key: DataSetKey) -> Arc<TraceSlot> {
        if let Some(slot) = self.cache.read().expect("trace store lock").get(&(name, key)) {
            return Arc::clone(slot);
        }
        let mut cache = self.cache.write().expect("trace store lock");
        Arc::clone(cache.entry((name, key)).or_default())
    }

    /// Number of generated traces.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cache
            .read()
            .expect("trace store lock")
            .values()
            .filter(|slot| slot.trace.get().is_some())
            .count()
    }

    /// Whether no trace has been generated yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Per-form heap footprint of a [`TraceStore`]'s cache hierarchy, in
/// bytes. Reported by `experiments bench` so the growing set of cached
/// forms stays visible.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheBytes {
    /// Packed conditional streams (8 bytes per event).
    pub packed: usize,
    /// Interned conditional streams (4 bytes per event + the id→pc table).
    pub interned: usize,
    /// Materialized first-level pattern streams (4 bytes per event, plus
    /// 4 more per event for laned BHT-derived streams).
    pub streams: usize,
}

impl CacheBytes {
    /// Total bytes across all cached forms.
    #[must_use]
    pub fn total(self) -> usize {
        self.packed + self.interned + self.streams
    }
}

/// Runs `config` on every benchmark (on the global sweep pool) and
/// collects the paper-style suite result.
///
/// Profiled schemes (GSg/PSg/Profiling) are trained on each benchmark's
/// *training* trace and measured on its *testing* trace; benchmarks whose
/// Table 2 training entry is "NA" yield `accuracy: None`, matching the
/// missing Static Training points of Figure 11.
///
/// The context-switch setting comes from `config` itself (the `c` flag of
/// Table 3) unless `sim.context_switch` already enables it.
///
/// This is a one-config sweep; batch drivers should hand their whole
/// configuration list to [`run_sweep`] so cells from different configs
/// share the pool.
#[must_use]
pub fn run_suite(config: &SchemeConfig, store: &TraceStore, sim: &SimConfig) -> SuiteResult {
    run_sweep(std::slice::from_ref(config), store, sim)
        .pop()
        .expect("one config in, one suite result out")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_store() -> TraceStore {
        TraceStore::new()
    }

    #[test]
    fn store_caches() {
        let store = small_store();
        let b = Benchmark::by_name("li").unwrap();
        let first = store.get(b, DataSet::Testing);
        let second = store.get(b, DataSet::Testing);
        assert!(Arc::ptr_eq(&first, &second));
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn packed_stream_matches_trace_conditionals() {
        let store = small_store();
        let b = Benchmark::by_name("li").unwrap();
        let trace = store.get(b, DataSet::Testing);
        let packed = store.get_packed(b, DataSet::Testing);
        assert_eq!(packed.len(), trace.conditional_branches().count());
        let again = store.get_packed(b, DataSet::Testing);
        assert!(Arc::ptr_eq(&packed, &again), "packing happens once");
        assert_eq!(store.len(), 1, "packed stream shares the trace slot");
    }

    #[test]
    fn interned_stream_is_cached_and_consistent() {
        let store = small_store();
        let b = Benchmark::by_name("li").unwrap();
        let interned = store.get_interned(b, DataSet::Testing);
        let packed = store.get_packed(b, DataSet::Testing);
        assert_eq!(interned.len(), packed.len());
        for (event, cond) in interned.events().iter().zip(packed.iter()) {
            assert_eq!(interned.record(*event), cond.to_record());
        }
        let again = store.get_interned(b, DataSet::Testing);
        assert!(Arc::ptr_eq(&interned, &again), "interning happens once");
        assert_eq!(store.len(), 1, "interned stream shares the trace slot");
    }

    #[test]
    fn pattern_streams_are_cached_per_key() {
        use tlabp_core::bht::{BhtConfig, BhtSignature};

        let store = small_store();
        let b = Benchmark::by_name("li").unwrap();
        let global = StreamKey::Global { history_bits: 8 };
        let bht =
            StreamKey::Bht(BhtSignature { config: BhtConfig::PAPER_DEFAULT, history_bits: 8 });
        let first = store.get_pattern_stream(b, DataSet::Testing, global);
        let again = store.get_pattern_stream(b, DataSet::Testing, global);
        assert!(Arc::ptr_eq(&first, &again), "derivation happens once per key");
        let other = store.get_pattern_stream(b, DataSet::Testing, bht);
        assert!(!Arc::ptr_eq(&first, &other));
        assert_eq!(first.len(), store.get_interned(b, DataSet::Testing).len());
        assert_eq!(other.len(), first.len());
        assert!(!first.is_laned());
        assert!(other.is_laned());
        assert_eq!(store.len(), 1, "streams share the trace slot");
    }

    #[test]
    fn cache_bytes_counts_every_form() {
        let store = small_store();
        assert_eq!(store.cache_bytes(), CacheBytes::default());
        let b = Benchmark::by_name("li").unwrap();
        let packed = store.get_packed(b, DataSet::Testing);
        let bytes = store.cache_bytes();
        assert_eq!(bytes.packed, packed.len() * 8);
        assert_eq!(bytes.interned, 0);
        let interned = store.get_interned(b, DataSet::Testing);
        let stream =
            store.get_pattern_stream(b, DataSet::Testing, StreamKey::Global { history_bits: 6 });
        let bytes = store.cache_bytes();
        assert_eq!(bytes.interned, interned.len() * 4 + interned.distinct_pcs() * 8);
        assert_eq!(bytes.streams, stream.bytes());
        assert_eq!(bytes.total(), bytes.packed + bytes.interned + bytes.streams);
    }

    #[test]
    fn concurrent_getters_share_one_generation() {
        // The old store generated outside any lock and only the winner's
        // trace was cached: racing callers could each run the VM and end
        // up holding distinct copies. The per-slot OnceLock makes every
        // caller block on the single generating thread, so all handles
        // must alias.
        let store = small_store();
        let b = Benchmark::by_name("li").unwrap();
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let store = store.clone();
                std::thread::spawn(move || store.get(b, DataSet::Testing))
            })
            .collect();
        let traces: Vec<Arc<Trace>> =
            handles.into_iter().map(|h| h.join().expect("getter thread")).collect();
        for trace in &traces[1..] {
            assert!(Arc::ptr_eq(&traces[0], trace), "every caller shares one generation");
        }
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn suite_runs_pag_on_all_benchmarks() {
        let store = small_store();
        let result = run_suite(&SchemeConfig::pag(8), &store, &SimConfig::no_context_switch());
        assert_eq!(result.rows.len(), 9);
        assert!(result.rows.iter().all(|r| r.accuracy.is_some()));
        let gmean = result.total_gmean();
        assert!(gmean > 0.80, "PAg(8) should be decent, got {gmean}");
    }

    #[test]
    fn profiled_scheme_skips_na_benchmarks() {
        let store = small_store();
        let result = run_suite(&SchemeConfig::profiling(), &store, &SimConfig::no_context_switch());
        let missing: Vec<&str> = result
            .rows
            .iter()
            .filter(|r| r.accuracy.is_none())
            .map(|r| r.benchmark.as_str())
            .collect();
        assert_eq!(missing, vec!["eqntott", "fpppp", "matrix300", "tomcatv"]);
    }

    #[test]
    fn config_c_flag_enables_context_switches() {
        let store = small_store();
        let result = run_suite(
            &SchemeConfig::pag(8).with_context_switch(true),
            &store,
            &SimConfig::default(),
        );
        let gcc = result.rows.iter().find(|r| r.benchmark == "gcc").unwrap();
        assert!(gcc.context_switches > 50, "gcc switches: {}", gcc.context_switches);
    }
}
