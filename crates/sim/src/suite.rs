//! Whole-suite orchestration: run predictor configurations across all
//! nine benchmarks, with trace caching and parallel execution.

use std::sync::Arc;

use parking_lot::RwLock;
use std::collections::HashMap;

use tlabp_core::config::SchemeConfig;
use tlabp_trace::Trace;
use tlabp_workloads::{Benchmark, DataSet};

use crate::metrics::{BenchmarkAccuracy, SuiteResult};
use crate::runner::{simulate, SimConfig};

/// A cache of generated benchmark traces.
///
/// Workload generation (running the mini-RISC VM) is deterministic but
/// not free; the store generates each (benchmark, data set) trace once
/// and shares it across every scheme evaluation. It is safe to use from
/// several threads.
#[derive(Debug, Default)]
pub struct TraceStore {
    cache: RwLock<HashMap<(&'static str, DataSetKey), Arc<Trace>>>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum DataSetKey {
    Training,
    Testing,
}

impl From<DataSet> for DataSetKey {
    fn from(ds: DataSet) -> Self {
        match ds {
            DataSet::Training => DataSetKey::Training,
            DataSet::Testing => DataSetKey::Testing,
        }
    }
}

impl TraceStore {
    /// Creates an empty store.
    #[must_use]
    pub fn new() -> Self {
        TraceStore::default()
    }

    /// Returns the trace for `(benchmark, data_set)`, generating it on
    /// first use.
    #[must_use]
    pub fn get(&self, benchmark: &Benchmark, data_set: DataSet) -> Arc<Trace> {
        let key = (benchmark.name(), DataSetKey::from(data_set));
        if let Some(trace) = self.cache.read().get(&key) {
            return Arc::clone(trace);
        }
        let trace = Arc::new(benchmark.trace(data_set));
        self.cache.write().entry(key).or_insert_with(|| Arc::clone(&trace));
        Arc::clone(&trace)
    }

    /// Number of cached traces.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cache.read().len()
    }

    /// Whether the store is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cache.read().is_empty()
    }
}

/// Runs `config` on every benchmark (in parallel) and collects the
/// paper-style suite result.
///
/// Profiled schemes (GSg/PSg/Profiling) are trained on each benchmark's
/// *training* trace and measured on its *testing* trace; benchmarks whose
/// Table 2 training entry is "NA" yield `accuracy: None`, matching the
/// missing Static Training points of Figure 11.
///
/// The context-switch setting comes from `config` itself (the `c` flag of
/// Table 3) unless `sim.context_switch` already enables it.
#[must_use]
pub fn run_suite(config: &SchemeConfig, store: &TraceStore, sim: &SimConfig) -> SuiteResult {
    let mut effective_sim = *sim;
    if config.context_switch() && effective_sim.context_switch.is_none() {
        effective_sim = SimConfig::paper_context_switch();
    }

    let rows: Vec<BenchmarkAccuracy> = crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = Benchmark::ALL
            .iter()
            .map(|benchmark| {
                let sim = effective_sim;
                scope.spawn(move |_| run_one(config, benchmark, store, &sim))
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("benchmark thread panicked")).collect()
    })
    .expect("suite scope");

    SuiteResult { scheme: config.to_string(), rows }
}

fn run_one(
    config: &SchemeConfig,
    benchmark: &Benchmark,
    store: &TraceStore,
    sim: &SimConfig,
) -> BenchmarkAccuracy {
    let unmeasured = |reason_predictions: u64| BenchmarkAccuracy {
        benchmark: benchmark.name().to_owned(),
        kind: benchmark.kind().into(),
        accuracy: None,
        context_switches: 0,
        predictions: reason_predictions,
    };

    let mut predictor = if config.needs_training() {
        if !benchmark.has_training_set() {
            return unmeasured(0);
        }
        let training = store.get(benchmark, DataSet::Training);
        config.build_trained(&training)
    } else {
        config.build().expect("non-training scheme builds")
    };

    let testing = store.get(benchmark, DataSet::Testing);
    let result = simulate(&mut *predictor, &testing, sim);
    BenchmarkAccuracy {
        benchmark: benchmark.name().to_owned(),
        kind: benchmark.kind().into(),
        accuracy: Some(result.accuracy()),
        context_switches: result.context_switches,
        predictions: result.predictions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_store() -> TraceStore {
        TraceStore::new()
    }

    #[test]
    fn store_caches() {
        let store = small_store();
        let b = Benchmark::by_name("li").unwrap();
        let first = store.get(b, DataSet::Testing);
        let second = store.get(b, DataSet::Testing);
        assert!(Arc::ptr_eq(&first, &second));
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn suite_runs_pag_on_all_benchmarks() {
        let store = small_store();
        let result = run_suite(
            &SchemeConfig::pag(8),
            &store,
            &SimConfig::no_context_switch(),
        );
        assert_eq!(result.rows.len(), 9);
        assert!(result.rows.iter().all(|r| r.accuracy.is_some()));
        let gmean = result.total_gmean();
        assert!(gmean > 0.80, "PAg(8) should be decent, got {gmean}");
    }

    #[test]
    fn profiled_scheme_skips_na_benchmarks() {
        let store = small_store();
        let result = run_suite(
            &SchemeConfig::profiling(),
            &store,
            &SimConfig::no_context_switch(),
        );
        let missing: Vec<&str> = result
            .rows
            .iter()
            .filter(|r| r.accuracy.is_none())
            .map(|r| r.benchmark.as_str())
            .collect();
        assert_eq!(missing, vec!["eqntott", "fpppp", "matrix300", "tomcatv"]);
    }

    #[test]
    fn config_c_flag_enables_context_switches() {
        let store = small_store();
        let result = run_suite(
            &SchemeConfig::pag(8).with_context_switch(true),
            &store,
            &SimConfig::default(),
        );
        let gcc = result.rows.iter().find(|r| r.benchmark == "gcc").unwrap();
        assert!(gcc.context_switches > 50, "gcc switches: {}", gcc.context_switches);
    }
}
