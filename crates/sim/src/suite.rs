//! Whole-suite orchestration: run predictor configurations across all
//! nine benchmarks, with trace caching (in memory and on disk) and
//! pooled parallel execution.

use std::collections::HashMap;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, OnceLock, RwLock};

use tlabp_core::config::SchemeConfig;
use tlabp_trace::io::{
    chunk_bytes_from_env, read_artifacts, write_artifacts_chunked, write_file_atomic,
    ChunkedArtifact, FileLock, ARTIFACT_VERSION, ARTIFACT_VERSION_CHUNKED,
};
use tlabp_trace::{InternedConds, PackedCond, PatternStream, Trace};
use tlabp_workloads::{Benchmark, DataSet};

use crate::metrics::SuiteResult;
use crate::runner::{derive_pattern_stream, SimConfig, StreamKey};
use crate::stream::{StreamCursor, StreamWindow};
use crate::sweep::run_sweep;

/// Environment variable naming the disk cache directory.
pub const TRACE_DIR_ENV: &str = "TLABP_TRACE_DIR";
/// Default disk cache directory when [`TRACE_DIR_ENV`] is unset but
/// persistence was requested ([`TraceStore::persistent`]).
pub const DEFAULT_TRACE_DIR: &str = "target/trace-cache";

/// A cache of generated benchmark traces.
///
/// Workload generation (running the mini-RISC VM) is deterministic but
/// not free; the store generates each (benchmark, data set) trace once
/// and shares it across every scheme evaluation. Cloning the store is
/// cheap and shares the cache, so sweep cells on other threads can hold
/// their own handle.
///
/// Each cache slot initializes through its own [`OnceLock`]: when many
/// sweep cells ask for the same ungenerated trace at once, exactly one
/// thread runs the VM while the rest block on that slot — the map locks
/// are only ever held to find or insert the (empty) slot, never during
/// generation.
///
/// # Disk tier
///
/// A store built with [`TraceStore::persistent`],
/// [`TraceStore::from_env`] or [`TraceStore::with_cache_dir`]
/// additionally persists every slot as a v3 chunked artifact container
/// (`tlabp_trace::io`): on the first touch of a slot the store tries to
/// hydrate all four forms from `<dir>/<bench>-<set>-v3-<fingerprint>.tlabp`
/// (falling back to the v2-named file an older build left behind)
/// without running the VM; whenever a getter actually generates or
/// derives something new, the slot is re-written atomically (temp file +
/// rename). File names carry the container version and the
/// workload-codegen fingerprint ([`Benchmark::fingerprint`]), so stale
/// artifacts from an older format or an edited workload generator are
/// simply never opened. A file that exists but fails its checksum or
/// decode is ignored with a warning and the slot regenerates — a corrupt
/// cache can cost time, never correctness.
///
/// # Streaming tier
///
/// Because v3 artifacts are chunked and seekable, a persisted pattern
/// stream can also be *streamed* instead of hydrated:
/// [`TraceStore::open_stream_cursor`] hands the replay kernels one
/// chunk at a time with resident bytes bounded by a window
/// (`TLABP_STREAM_BYTES`), accounted through the store's shared
/// [`StreamWindow`] gauge.
#[derive(Debug, Clone, Default)]
pub struct TraceStore {
    cache: Arc<RwLock<SlotMap>>,
    disk: Option<Arc<DiskTier>>,
    window: Arc<StreamWindow>,
}

type SlotMap = HashMap<(&'static str, DataSetKey), Arc<TraceSlot>>;

#[derive(Debug, Default)]
struct TraceSlot {
    trace: OnceLock<Arc<Trace>>,
    packed: OnceLock<Arc<Vec<PackedCond>>>,
    interned: OnceLock<Arc<InternedConds>>,
    // One materialized first-level stream per StreamKey. The mutex guards
    // only the map (find or insert the cell); each cell's derivation runs
    // behind its own OnceLock, exactly like the three fixed forms above.
    streams: Mutex<HashMap<StreamKey, Arc<OnceLock<Arc<PatternStream>>>>>,
    // Disk-tier state: the workload fingerprint (computed once), a
    // hydration gate so the artifact file is read at most once per slot,
    // and a write lock serializing re-persists of this slot.
    fingerprint: OnceLock<u64>,
    hydrated: OnceLock<()>,
    write_lock: Mutex<()>,
}

/// The persistence layer of a [`TraceStore`]: one artifact container per
/// (benchmark, data set) under a cache directory.
#[derive(Debug)]
struct DiskTier {
    dir: PathBuf,
}

/// How long a persist waits for a contended artifact lock before
/// proceeding unlocked (last writer wins; the rename keeps files whole).
const LOCK_WAIT_MILLIS: u64 = 2_000;

/// Age beyond which a lock file is considered abandoned by a crashed
/// writer and broken. Persists hold the lock for milliseconds, so
/// anything this old is dead.
const LOCK_STALE_SECS: u64 = 10;

impl DiskTier {
    /// The artifact path for a slot. The container version and workload
    /// fingerprint are part of the name, so a format bump or workload
    /// edit invalidates by construction — the old file is just never
    /// looked up again.
    fn path_for(&self, name: &str, data_set: DataSet, fingerprint: u64) -> PathBuf {
        let set = match data_set {
            DataSet::Training => "training",
            DataSet::Testing => "testing",
        };
        self.dir.join(format!("{name}-{set}-v{ARTIFACT_VERSION_CHUNKED}-{fingerprint:016x}.tlabp"))
    }

    /// The v2-named artifact path an older build would have written for
    /// the same slot. Hydration falls back to it (the v2 *format* still
    /// decodes), so upgrading in place costs nothing; persists always
    /// write the v3 name.
    fn legacy_path_for(&self, name: &str, data_set: DataSet, fingerprint: u64) -> PathBuf {
        let set = match data_set {
            DataSet::Training => "training",
            DataSet::Testing => "testing",
        };
        self.dir.join(format!("{name}-{set}-v{ARTIFACT_VERSION}-{fingerprint:016x}.tlabp"))
    }

    /// Reads the slot's artifact bytes: the v3-named file, else the
    /// v2-named fallback. Returns the path actually read for messages.
    fn read_slot_bytes(
        &self,
        name: &str,
        data_set: DataSet,
        fingerprint: u64,
    ) -> Option<(PathBuf, Vec<u8>)> {
        let path = self.path_for(name, data_set, fingerprint);
        if let Ok(bytes) = fs::read(&path) {
            return Some((path, bytes));
        }
        let legacy = self.legacy_path_for(name, data_set, fingerprint);
        fs::read(&legacy).ok().map(|bytes| (legacy, bytes))
    }

    /// Fills whatever forms the slot's artifact file holds. Missing file
    /// is a plain miss; a present-but-unreadable file warns and behaves
    /// as a miss (the next persist overwrites it).
    fn hydrate(&self, slot: &TraceSlot, benchmark: &Benchmark, data_set: DataSet) {
        let fingerprint = *slot.fingerprint.get_or_init(|| benchmark.fingerprint(data_set));
        let Some((path, bytes)) = self.read_slot_bytes(benchmark.name(), data_set, fingerprint)
        else {
            return;
        };
        let bundle = match read_artifacts(&bytes) {
            Ok(bundle) => bundle,
            Err(err) => {
                eprintln!(
                    "warning: ignoring corrupt trace artifact {} ({err}); regenerating",
                    path.display()
                );
                return;
            }
        };
        if bundle.fingerprint != fingerprint {
            return;
        }
        if let Some(trace) = bundle.trace {
            let _ = slot.trace.set(Arc::new(trace));
        }
        if let Some(packed) = bundle.packed {
            let _ = slot.packed.set(Arc::new(packed));
        }
        if let Some(interned) = bundle.interned {
            let _ = slot.interned.set(Arc::new(interned));
        }
        let mut streams = slot.streams.lock().expect("stream map lock");
        for (key_bytes, stream) in bundle.streams {
            // An undecodable key (written by a future scheme variant) is
            // skipped, not trusted.
            let Some(key) = StreamKey::from_bytes(&key_bytes) else { continue };
            let _ = streams.entry(key).or_default().set(Arc::new(stream));
        }
    }

    /// Atomically rewrites the slot's artifact file with every form
    /// currently materialized. I/O failures warn and leave the previous
    /// file (if any) intact — persistence is an accelerator, never a
    /// correctness dependency.
    ///
    /// # Concurrent writers
    ///
    /// The in-process `write_lock` serializes persists of one slot within
    /// a store, but a shared cache directory can be written by *several*
    /// processes at once (concurrent service clients, parallel CI
    /// suites). Two defenses make that safe:
    ///
    /// * an **advisory file lock** (`<artifact>.lock`, created with
    ///   `create_new`) serializes cross-process persists of one artifact.
    ///   Stale locks left by a killed process are broken after
    ///   [`LOCK_STALE_SECS`]; a writer that cannot acquire the lock
    ///   within [`LOCK_WAIT_MILLIS`] proceeds anyway with a warning —
    ///   the atomic rename below means the worst outcome is last writer
    ///   wins, never a torn file.
    /// * **merge-on-persist**: under the lock, the current artifact is
    ///   re-read and any sections it has that this store has not
    ///   materialized (a trace form, disk-only pattern streams) are
    ///   carried into the rewrite. Without this, two clients deriving
    ///   *different* streams for the same trace would each overwrite the
    ///   other's work; with it, the artifact converges to the union.
    ///   In-memory forms win on conflict — they are what this store
    ///   measured with.
    ///
    /// Readers need no lock at all: hydration re-validates every section
    /// checksum on open and treats a torn or corrupt file as a miss.
    fn persist(&self, slot: &TraceSlot, benchmark: &Benchmark, data_set: DataSet) {
        let _guard = slot.write_lock.lock().expect("slot write lock");
        let fingerprint = *slot.fingerprint.get_or_init(|| benchmark.fingerprint(data_set));
        let trace = slot.trace.get().cloned();
        let packed = slot.packed.get().cloned();
        let interned = slot.interned.get().cloned();
        let streams: Vec<(Vec<u8>, Arc<PatternStream>)> = {
            let map = slot.streams.lock().expect("stream map lock");
            map.iter()
                .filter_map(|(key, cell)| cell.get().map(|s| (key.to_bytes(), Arc::clone(s))))
                .collect()
        };
        let path = self.path_for(benchmark.name(), data_set, fingerprint);
        let _file_lock = self.lock_artifact(&path);

        // Merge: keep sections a concurrent writer (or an earlier run)
        // already persisted that this store never materialized — the
        // v2-named fallback included, so an in-place upgrade carries an
        // old cache's streams into the first v3 rewrite.
        let existing = self
            .read_slot_bytes(benchmark.name(), data_set, fingerprint)
            .and_then(|(_, bytes)| read_artifacts(&bytes).ok())
            .filter(|bundle| bundle.fingerprint == fingerprint);
        let merged_trace: Option<&Trace> =
            trace.as_deref().or(existing.as_ref().and_then(|b| b.trace.as_ref()));
        let merged_packed: Option<&[PackedCond]> = packed
            .as_deref()
            .map(Vec::as_slice)
            .or(existing.as_ref().and_then(|b| b.packed.as_deref()));
        let merged_interned: Option<&InternedConds> =
            interned.as_deref().or(existing.as_ref().and_then(|b| b.interned.as_ref()));
        let mut refs: Vec<(Vec<u8>, &PatternStream)> =
            streams.iter().map(|(key, stream)| (key.clone(), stream.as_ref())).collect();
        if let Some(bundle) = &existing {
            for (key, stream) in &bundle.streams {
                if !refs.iter().any(|(have, _)| have == key) {
                    refs.push((key.clone(), stream));
                }
            }
        }
        // Deterministic section order keeps repeated persists of the same
        // content byte-identical.
        refs.sort_by(|a, b| a.0.cmp(&b.0));

        let bytes = write_artifacts_chunked(
            fingerprint,
            merged_trace,
            merged_packed,
            merged_interned,
            &refs,
            chunk_bytes_from_env(),
        );
        if let Err(err) = self.write_atomic(&path, &bytes) {
            eprintln!("warning: failed to write trace artifact {} ({err})", path.display());
        }
    }

    /// Acquires the advisory cross-process lock for an artifact path:
    /// `<artifact>.lock`, created exclusively
    /// ([`FileLock::acquire`] — the same machinery the service's
    /// persistent memo tier uses). Returns `None` (with a warning) when
    /// the lock cannot be acquired within the wait budget — the caller
    /// proceeds unlocked rather than stalling simulation on a cache
    /// courtesy.
    fn lock_artifact(&self, path: &Path) -> Option<FileLock> {
        if fs::create_dir_all(&self.dir).is_err() {
            return None;
        }
        FileLock::acquire(
            &path.with_extension("tlabp.lock"),
            std::time::Duration::from_millis(LOCK_WAIT_MILLIS),
            std::time::Duration::from_secs(LOCK_STALE_SECS),
        )
    }

    /// Writes via a unique temp file in the same directory, then renames
    /// over the target, so readers only ever observe complete files.
    fn write_atomic(&self, path: &Path, bytes: &[u8]) -> std::io::Result<()> {
        write_file_atomic(path, bytes)
    }

    /// Total size of the artifact files currently in the cache directory.
    fn disk_bytes(&self) -> usize {
        let Ok(entries) = fs::read_dir(&self.dir) else { return 0 };
        entries
            .filter_map(Result::ok)
            .filter(|entry| entry.path().extension().is_some_and(|ext| ext == "tlabp"))
            .filter_map(|entry| entry.metadata().ok())
            .map(|meta| meta.len() as usize)
            .sum()
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum DataSetKey {
    Training,
    Testing,
}

impl From<DataSet> for DataSetKey {
    fn from(ds: DataSet) -> Self {
        match ds {
            DataSet::Training => DataSetKey::Training,
            DataSet::Testing => DataSetKey::Testing,
        }
    }
}

impl TraceStore {
    /// Creates an empty, memory-only store.
    #[must_use]
    pub fn new() -> Self {
        TraceStore::default()
    }

    /// Creates a store with the disk tier enabled: artifacts live under
    /// [`TRACE_DIR_ENV`] if set, else [`DEFAULT_TRACE_DIR`]. Setting the
    /// variable to an empty string disables persistence entirely.
    #[must_use]
    pub fn persistent() -> Self {
        match std::env::var(TRACE_DIR_ENV) {
            Ok(dir) if dir.is_empty() => TraceStore::new(),
            Ok(dir) => TraceStore::with_cache_dir(dir),
            Err(_) => TraceStore::with_cache_dir(DEFAULT_TRACE_DIR),
        }
    }

    /// Creates a store whose disk tier is enabled only when
    /// [`TRACE_DIR_ENV`] is set (and non-empty). This is the constructor
    /// for test suites: plain runs stay hermetic and memory-only, while
    /// CI can opt the same tests into the disk path by exporting the
    /// variable.
    #[must_use]
    pub fn from_env() -> Self {
        match std::env::var(TRACE_DIR_ENV) {
            Ok(dir) if !dir.is_empty() => TraceStore::with_cache_dir(dir),
            _ => TraceStore::new(),
        }
    }

    /// Creates a store persisting artifacts under `dir` (created on first
    /// write; a missing directory just means every lookup misses).
    #[must_use]
    pub fn with_cache_dir(dir: impl Into<PathBuf>) -> Self {
        TraceStore {
            cache: Arc::default(),
            disk: Some(Arc::new(DiskTier { dir: dir.into() })),
            window: Arc::default(),
        }
    }

    /// The store's shared streaming-window gauge: resident (and peak)
    /// bytes across every [`StreamCursor`] opened through
    /// [`TraceStore::open_stream_cursor`].
    #[must_use]
    pub fn stream_window(&self) -> &Arc<StreamWindow> {
        &self.window
    }

    /// Opens a bounded-memory [`StreamCursor`] over the persisted
    /// pattern stream for `(benchmark, data_set, key)`, without
    /// hydrating it.
    ///
    /// `None` when the store has no disk tier, the slot's v3 artifact
    /// is missing or stamped with a different workload fingerprint, or
    /// it holds no section for `key` — callers fall back to
    /// [`TraceStore::get_pattern_stream`] plus in-memory replay.
    #[must_use]
    pub fn open_stream_cursor(
        &self,
        benchmark: &Benchmark,
        data_set: DataSet,
        key: StreamKey,
        stream_bytes: usize,
    ) -> Option<StreamCursor> {
        let disk = self.disk.as_ref()?;
        let slot = self.slot(benchmark.name(), data_set.into());
        let fingerprint = *slot.fingerprint.get_or_init(|| benchmark.fingerprint(data_set));
        let path = disk.path_for(benchmark.name(), data_set, fingerprint);
        let cursor = StreamCursor::open(&path, &key.to_bytes(), stream_bytes, &self.window)?;
        (cursor.fingerprint() == fingerprint).then_some(cursor)
    }

    /// Whether the persisted v3 artifact for `(benchmark, data_set)`
    /// already holds a streamable section for `key`. Reads only the
    /// artifact's header and section heads (the chunk index), never a
    /// chunk body — this is the probe the engine's prefetch phase uses
    /// when streaming replay is on.
    #[must_use]
    pub fn stream_on_disk(&self, benchmark: &Benchmark, data_set: DataSet, key: StreamKey) -> bool {
        let Some(disk) = self.disk.as_ref() else { return false };
        let slot = self.slot(benchmark.name(), data_set.into());
        let fingerprint = *slot.fingerprint.get_or_init(|| benchmark.fingerprint(data_set));
        let path = disk.path_for(benchmark.name(), data_set, fingerprint);
        ChunkedArtifact::open(&path).is_ok_and(|artifact| {
            artifact.fingerprint() == fingerprint && artifact.find_stream(&key.to_bytes()).is_some()
        })
    }

    /// The disk cache directory, if the disk tier is enabled.
    #[must_use]
    pub fn cache_dir(&self) -> Option<&Path> {
        self.disk.as_deref().map(|disk| disk.dir.as_path())
    }

    /// Returns the trace for `(benchmark, data_set)`, generating it on
    /// first use. Concurrent callers for the same key block until the
    /// single generating thread finishes.
    #[must_use]
    pub fn get(&self, benchmark: &Benchmark, data_set: DataSet) -> Arc<Trace> {
        let slot = self.slot_hydrated(benchmark, data_set);
        let mut generated = false;
        let trace = Arc::clone(slot.trace.get_or_init(|| {
            generated = true;
            Arc::new(benchmark.trace(data_set))
        }));
        if generated {
            self.persist(&slot, benchmark, data_set);
        }
        trace
    }

    /// Returns the packed conditional-branch stream for
    /// `(benchmark, data_set)` — the input of
    /// [`crate::runner::simulate_packed`] — packing it on first use.
    #[must_use]
    pub fn get_packed(&self, benchmark: &Benchmark, data_set: DataSet) -> Arc<Vec<PackedCond>> {
        let slot = self.slot_hydrated(benchmark, data_set);
        let mut generated = false;
        let packed = Arc::clone(Self::packed_of(&slot, benchmark, data_set, &mut generated));
        if generated {
            self.persist(&slot, benchmark, data_set);
        }
        packed
    }

    /// Returns the pc-interned conditional stream for
    /// `(benchmark, data_set)` — the input of
    /// [`crate::runner::simulate_fused`] — interning it on first use.
    ///
    /// All three forms (trace, packed, interned) share one slot, each
    /// behind its own `OnceLock`, so every derivation happens exactly
    /// once per key however many cells race for it.
    #[must_use]
    pub fn get_interned(&self, benchmark: &Benchmark, data_set: DataSet) -> Arc<InternedConds> {
        let slot = self.slot_hydrated(benchmark, data_set);
        let mut generated = false;
        let interned = Self::interned_of(&slot, benchmark, data_set, &mut generated);
        if generated {
            self.persist(&slot, benchmark, data_set);
        }
        interned
    }

    /// Returns the materialized first-level stream for
    /// `(benchmark, data_set, key)` — the input of
    /// [`crate::runner::simulate_replay`] — deriving it on first use.
    ///
    /// The fourth cached form, keyed per first-level [`StreamKey`] rather
    /// than only per trace. The derivation chains through the interned
    /// stream (and thus the packed stream and the trace), each stage
    /// behind its own `OnceLock`, so every derivation happens exactly once
    /// per key however many replay cells race for it.
    #[must_use]
    pub fn get_pattern_stream(
        &self,
        benchmark: &Benchmark,
        data_set: DataSet,
        key: StreamKey,
    ) -> Arc<PatternStream> {
        let slot = self.slot_hydrated(benchmark, data_set);
        let cell = {
            let mut streams = slot.streams.lock().expect("stream map lock");
            Arc::clone(streams.entry(key).or_default())
        };
        if let Some(stream) = cell.get() {
            return Arc::clone(stream);
        }
        let mut generated = false;
        let interned = Self::interned_of(&slot, benchmark, data_set, &mut generated);
        let stream = Arc::clone(cell.get_or_init(|| {
            generated = true;
            Arc::new(derive_pattern_stream(&interned, key))
        }));
        if generated {
            self.persist(&slot, benchmark, data_set);
        }
        stream
    }

    /// The already-resident pattern stream for `(benchmark, data_set,
    /// key)`, or `None` when it has not been derived or hydrated yet — a
    /// non-forcing peek. The engine's intra-batch split heuristic uses
    /// this to size sub-batches by event count without ever triggering a
    /// derivation (or even a disk hydration) on the submitting thread.
    #[must_use]
    pub fn peek_pattern_stream(
        &self,
        benchmark: &Benchmark,
        data_set: DataSet,
        key: StreamKey,
    ) -> Option<Arc<PatternStream>> {
        let slot = {
            let cache = self.cache.read().expect("trace store lock");
            Arc::clone(cache.get(&(benchmark.name(), data_set.into()))?)
        };
        let streams = slot.streams.lock().expect("stream map lock");
        streams.get(&key).and_then(|cell| cell.get()).map(Arc::clone)
    }

    /// The trace → packed derivation chain on a slot; sets `generated`
    /// when any stage actually ran (vs. was already cached or hydrated).
    fn packed_of<'s>(
        slot: &'s TraceSlot,
        benchmark: &Benchmark,
        data_set: DataSet,
        generated: &mut bool,
    ) -> &'s Arc<Vec<PackedCond>> {
        // Packing reads the full trace, so a hydrated packed form without
        // its trace must not force trace regeneration: only consult the
        // trace OnceLock when packing actually needs to run.
        if let Some(packed) = slot.packed.get() {
            return packed;
        }
        let trace = Arc::clone(slot.trace.get_or_init(|| {
            *generated = true;
            Arc::new(benchmark.trace(data_set))
        }));
        slot.packed.get_or_init(|| {
            *generated = true;
            Arc::new(trace.pack_conditionals())
        })
    }

    /// The trace → packed → interned derivation chain on a slot.
    fn interned_of(
        slot: &TraceSlot,
        benchmark: &Benchmark,
        data_set: DataSet,
        generated: &mut bool,
    ) -> Arc<InternedConds> {
        if let Some(interned) = slot.interned.get() {
            return Arc::clone(interned);
        }
        let packed = Arc::clone(Self::packed_of(slot, benchmark, data_set, generated));
        Arc::clone(slot.interned.get_or_init(|| {
            *generated = true;
            Arc::new(InternedConds::from_packed(&packed))
        }))
    }

    /// Finds or creates the slot and, when the disk tier is on, hydrates
    /// it from its artifact file exactly once.
    fn slot_hydrated(&self, benchmark: &Benchmark, data_set: DataSet) -> Arc<TraceSlot> {
        let slot = self.slot(benchmark.name(), data_set.into());
        if let Some(disk) = &self.disk {
            slot.hydrated.get_or_init(|| disk.hydrate(&slot, benchmark, data_set));
        }
        slot
    }

    /// Re-persists a slot after a getter generated something new; no-op
    /// for memory-only stores.
    fn persist(&self, slot: &TraceSlot, benchmark: &Benchmark, data_set: DataSet) {
        if let Some(disk) = &self.disk {
            disk.persist(slot, benchmark, data_set);
        }
    }

    /// Bytes currently held by each cached trace form, across every slot
    /// in the store, plus the on-disk artifact footprint when the disk
    /// tier is enabled.
    #[must_use]
    pub fn cache_bytes(&self) -> CacheBytes {
        let mut bytes = CacheBytes::default();
        for slot in self.cache.read().expect("trace store lock").values() {
            if let Some(packed) = slot.packed.get() {
                bytes.packed += packed.len() * std::mem::size_of::<PackedCond>();
            }
            if let Some(interned) = slot.interned.get() {
                bytes.interned += interned.len() * 4 + interned.distinct_pcs() * 8;
            }
            for cell in slot.streams.lock().expect("stream map lock").values() {
                if let Some(stream) = cell.get() {
                    bytes.streams += stream.bytes();
                }
            }
        }
        if let Some(disk) = &self.disk {
            bytes.disk = disk.disk_bytes();
        }
        bytes.stream_window = self.window.current();
        bytes
    }

    /// Finds or inserts the (possibly uninitialized) slot for a key.
    fn slot(&self, name: &'static str, key: DataSetKey) -> Arc<TraceSlot> {
        if let Some(slot) = self.cache.read().expect("trace store lock").get(&(name, key)) {
            return Arc::clone(slot);
        }
        let mut cache = self.cache.write().expect("trace store lock");
        Arc::clone(cache.entry((name, key)).or_default())
    }

    /// Number of generated traces.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cache
            .read()
            .expect("trace store lock")
            .values()
            .filter(|slot| slot.trace.get().is_some())
            .count()
    }

    /// Whether no trace has been generated yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Per-form footprint of a [`TraceStore`]'s cache hierarchy, in bytes.
/// Reported by `experiments bench` so the growing set of cached forms
/// stays visible.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheBytes {
    /// Packed conditional streams (8 bytes per event).
    pub packed: usize,
    /// Interned conditional streams (4 bytes per event + the id→pc table).
    pub interned: usize,
    /// Materialized first-level pattern streams (4 bytes per event, plus
    /// 4 more per event for laned BHT-derived streams).
    pub streams: usize,
    /// On-disk artifact containers in the cache directory (0 for
    /// memory-only stores).
    pub disk: usize,
    /// Bytes currently resident in streaming replay windows (decoded
    /// chunks in flight between a [`StreamCursor`]'s decode thread and
    /// the replay kernel); 0 when the streaming tier is off or idle.
    pub stream_window: usize,
}

impl CacheBytes {
    /// Total bytes across all cached forms, in memory and on disk,
    /// including the resident streaming window.
    #[must_use]
    pub fn total(self) -> usize {
        self.packed + self.interned + self.streams + self.disk + self.stream_window
    }
}

/// Runs `config` on every benchmark (on the global sweep pool) and
/// collects the paper-style suite result.
///
/// Profiled schemes (GSg/PSg/Profiling) are trained on each benchmark's
/// *training* trace and measured on its *testing* trace; benchmarks whose
/// Table 2 training entry is "NA" yield `accuracy: None`, matching the
/// missing Static Training points of Figure 11.
///
/// The context-switch setting comes from `config` itself (the `c` flag of
/// Table 3) unless `sim.context_switch` already enables it.
///
/// This is a one-config sweep; batch drivers should hand their whole
/// configuration list to [`run_sweep`] so cells from different configs
/// share the pool.
#[must_use]
pub fn run_suite(config: &SchemeConfig, store: &TraceStore, sim: &SimConfig) -> SuiteResult {
    run_sweep(std::slice::from_ref(config), store, sim)
        .pop()
        .expect("one config in, one suite result out")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_store() -> TraceStore {
        TraceStore::new()
    }

    #[test]
    fn store_caches() {
        let store = small_store();
        let b = Benchmark::by_name("li").unwrap();
        let first = store.get(b, DataSet::Testing);
        let second = store.get(b, DataSet::Testing);
        assert!(Arc::ptr_eq(&first, &second));
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn packed_stream_matches_trace_conditionals() {
        let store = small_store();
        let b = Benchmark::by_name("li").unwrap();
        let trace = store.get(b, DataSet::Testing);
        let packed = store.get_packed(b, DataSet::Testing);
        assert_eq!(packed.len(), trace.conditional_branches().count());
        let again = store.get_packed(b, DataSet::Testing);
        assert!(Arc::ptr_eq(&packed, &again), "packing happens once");
        assert_eq!(store.len(), 1, "packed stream shares the trace slot");
    }

    #[test]
    fn interned_stream_is_cached_and_consistent() {
        let store = small_store();
        let b = Benchmark::by_name("li").unwrap();
        let interned = store.get_interned(b, DataSet::Testing);
        let packed = store.get_packed(b, DataSet::Testing);
        assert_eq!(interned.len(), packed.len());
        for (event, cond) in interned.events().iter().zip(packed.iter()) {
            assert_eq!(interned.record(*event), cond.to_record());
        }
        let again = store.get_interned(b, DataSet::Testing);
        assert!(Arc::ptr_eq(&interned, &again), "interning happens once");
        assert_eq!(store.len(), 1, "interned stream shares the trace slot");
    }

    #[test]
    fn pattern_streams_are_cached_per_key() {
        use tlabp_core::bht::{BhtConfig, BhtSignature};

        let store = small_store();
        let b = Benchmark::by_name("li").unwrap();
        let global = StreamKey::Global { history_bits: 8 };
        let bht =
            StreamKey::Bht(BhtSignature { config: BhtConfig::PAPER_DEFAULT, history_bits: 8 });
        let first = store.get_pattern_stream(b, DataSet::Testing, global);
        let again = store.get_pattern_stream(b, DataSet::Testing, global);
        assert!(Arc::ptr_eq(&first, &again), "derivation happens once per key");
        let other = store.get_pattern_stream(b, DataSet::Testing, bht);
        assert!(!Arc::ptr_eq(&first, &other));
        assert_eq!(first.len(), store.get_interned(b, DataSet::Testing).len());
        assert_eq!(other.len(), first.len());
        assert!(!first.is_laned());
        assert!(other.is_laned());
        assert_eq!(store.len(), 1, "streams share the trace slot");
    }

    #[test]
    fn cache_bytes_counts_every_form() {
        let store = small_store();
        assert_eq!(store.cache_bytes(), CacheBytes::default());
        let b = Benchmark::by_name("li").unwrap();
        let packed = store.get_packed(b, DataSet::Testing);
        let bytes = store.cache_bytes();
        assert_eq!(bytes.packed, packed.len() * 8);
        assert_eq!(bytes.interned, 0);
        let interned = store.get_interned(b, DataSet::Testing);
        let stream =
            store.get_pattern_stream(b, DataSet::Testing, StreamKey::Global { history_bits: 6 });
        let bytes = store.cache_bytes();
        assert_eq!(bytes.interned, interned.len() * 4 + interned.distinct_pcs() * 8);
        assert_eq!(bytes.streams, stream.bytes());
        assert_eq!(bytes.disk, 0, "memory-only store has no disk footprint");
        assert_eq!(bytes.total(), bytes.packed + bytes.interned + bytes.streams + bytes.disk);
    }

    #[test]
    fn disk_tier_persists_and_rehydrates_slots() {
        let dir =
            std::env::temp_dir().join(format!("tlabp-suite-disk-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let b = Benchmark::by_name("li").unwrap();
        let key = StreamKey::Global { history_bits: 6 };

        let store = TraceStore::with_cache_dir(&dir);
        assert_eq!(store.cache_dir(), Some(dir.as_path()));
        let interned = store.get_interned(b, DataSet::Testing);
        let stream = store.get_pattern_stream(b, DataSet::Testing, key);
        let bytes = store.cache_bytes();
        assert!(bytes.disk > 0, "persist should leave an artifact on disk");
        assert!(bytes.total() > bytes.packed + bytes.interned + bytes.streams);

        // A fresh store over the same directory hydrates every form from
        // disk; the handles are new allocations with identical content.
        let warm = TraceStore::with_cache_dir(&dir);
        let warm_interned = warm.get_interned(b, DataSet::Testing);
        let warm_stream = warm.get_pattern_stream(b, DataSet::Testing, key);
        assert_eq!(*warm_interned, *interned);
        assert_eq!(*warm_stream, *stream);
        assert!(!Arc::ptr_eq(&warm_interned, &interned));

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn concurrent_getters_share_one_generation() {
        // The old store generated outside any lock and only the winner's
        // trace was cached: racing callers could each run the VM and end
        // up holding distinct copies. The per-slot OnceLock makes every
        // caller block on the single generating thread, so all handles
        // must alias.
        let store = small_store();
        let b = Benchmark::by_name("li").unwrap();
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let store = store.clone();
                std::thread::spawn(move || store.get(b, DataSet::Testing))
            })
            .collect();
        let traces: Vec<Arc<Trace>> =
            handles.into_iter().map(|h| h.join().expect("getter thread")).collect();
        for trace in &traces[1..] {
            assert!(Arc::ptr_eq(&traces[0], trace), "every caller shares one generation");
        }
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn suite_runs_pag_on_all_benchmarks() {
        let store = small_store();
        let result = run_suite(&SchemeConfig::pag(8), &store, &SimConfig::no_context_switch());
        assert_eq!(result.rows.len(), 9);
        assert!(result.rows.iter().all(|r| r.accuracy.is_some()));
        let gmean = result.total_gmean();
        assert!(gmean > 0.80, "PAg(8) should be decent, got {gmean}");
    }

    #[test]
    fn profiled_scheme_skips_na_benchmarks() {
        let store = small_store();
        let result = run_suite(&SchemeConfig::profiling(), &store, &SimConfig::no_context_switch());
        let missing: Vec<&str> = result
            .rows
            .iter()
            .filter(|r| r.accuracy.is_none())
            .map(|r| r.benchmark.as_str())
            .collect();
        assert_eq!(missing, vec!["eqntott", "fpppp", "matrix300", "tomcatv"]);
    }

    #[test]
    fn config_c_flag_enables_context_switches() {
        let store = small_store();
        let result = run_suite(
            &SchemeConfig::pag(8).with_context_switch(true),
            &store,
            &SimConfig::default(),
        );
        let gcc = result.rows.iter().find(|r| r.benchmark == "gcc").unwrap();
        assert!(gcc.context_switches > 50, "gcc switches: {}", gcc.context_switches);
    }
}
