//! # Trace-driven branch prediction simulator
//!
//! The measurement half of the reproduction (the paper's Section 4): a
//! simulation loop that feeds conditional branches to a predictor,
//! verifies predictions against resolved directions, and models context
//! switches; plus suite orchestration over the nine SPEC-like workloads
//! and the geometric-mean accuracy metrics the paper reports.
//!
//! * [`runner`] — [`runner::simulate`] drives one predictor over one
//!   trace, honoring the trap/500k-instruction context-switch model of
//!   Section 5.1.4.
//! * [`plan`] — the declarative job IR: a [`plan::Job`] names a
//!   predictor, a trace, simulation options and the metrics wanted; a
//!   [`plan::Plan`] is an ordered batch. Pure data, no execution.
//! * [`engine`] — [`engine::execute`] lowers each job onto the best
//!   execution path (pattern-stream replay, packed fast path,
//!   full-trace, or dynamic dispatch for registry predictors), runs the
//!   batch on the persistent worker pool ([`pool`]) and reassembles a
//!   typed [`engine::ResultSet`] in deterministic plan order.
//! * [`suite`] — [`suite::run_suite`] evaluates a
//!   [`tlabp_core::config::SchemeConfig`] on all nine benchmarks,
//!   training the profiled schemes per benchmark and skipping the
//!   benchmarks without training data sets, as the paper does.
//! * [`sweep`] — [`sweep::run_sweep`] executes a whole (scheme ×
//!   benchmark) matrix: a thin wrapper over [`Plan::suites`](plan::Plan::suites)
//!   plus [`engine::execute`].
//! * [`metrics`] — per-benchmark accuracies and the Tot/Int/FP geometric
//!   means.
//! * [`report`] — ASCII tables and CSV for the experiment harness.
//!
//! # Example
//!
//! ```no_run
//! use tlabp_core::config::SchemeConfig;
//! use tlabp_sim::runner::SimConfig;
//! use tlabp_sim::suite::{run_suite, TraceStore};
//!
//! let store = TraceStore::new();
//! let result = run_suite(&SchemeConfig::pag(12), &store, &SimConfig::default());
//! println!("PAg(12) Tot GMean: {:.2}%", result.total_gmean() * 100.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod json;
pub mod metrics;
pub mod plan;
pub mod pool;
pub mod report;
pub mod runner;
pub mod stream;
pub mod suite;
pub mod sweep;

pub use engine::{
    execute, execute_on, execute_with, prefetch_on, ExecOptions, JobItem, JobMetrics, JobOutcome,
    JobStream, ResultSet, Session, RESULT_WIRE_VERSION,
};
pub use json::{Json, WireError};
pub use metrics::{geometric_mean, SuiteResult};
pub use plan::{Job, MetricSet, Plan, PredictorSpec, TargetCacheSpec, TraceKey, PLAN_WIRE_VERSION};
pub use pool::SweepPool;
pub use runner::{
    derive_pattern_stream, replay_stream_key, simulate, simulate_fused, simulate_packed,
    simulate_replay, simulate_replay_many, simulate_replay_transposed,
    simulate_replay_transposed_streamed, ReplayPht, SimConfig, SimResult, StreamKey,
};
pub use stream::{
    stream_bytes_from_env, StreamChunk, StreamCursor, StreamWindow, DEFAULT_STREAM_BYTES,
    STREAM_BYTES_ENV,
};
pub use suite::{run_suite, CacheBytes, TraceStore, DEFAULT_TRACE_DIR, TRACE_DIR_ENV};
pub use sweep::{run_sweep, run_sweep_on};
