//! A persistent worker pool for sweep execution.
//!
//! The experiment drivers evaluate hundreds of (scheme, benchmark)
//! cells. Spawning a thread per cell (or per benchmark, as the first
//! version of `run_suite` did) re-pays thread start-up for every suite
//! and caps parallelism at the per-call fan-out. [`SweepPool`] instead
//! starts one set of workers for the life of the process; cells go into
//! a shared injector queue and idle workers pull the next cell the
//! moment they finish one, so a long cell (gcc) never serializes behind
//! a short one (matrix300) and every core stays busy across suite
//! boundaries.
//!
//! Built on `std::thread` + `std::sync::mpsc` only — the build must work
//! without the registry, so no external thread-pool or deque crates.
//!
//! Results are tagged with their submission index and reassembled in
//! order, so pool size never affects output ordering — the determinism
//! test runs the same sweep on 1 worker and on many and asserts
//! byte-identical results.

use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex, OnceLock};
use std::thread;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A fixed-size pool of persistent worker threads executing boxed jobs
/// from a shared queue.
#[derive(Debug)]
pub struct SweepPool {
    injector: Sender<Job>,
    threads: usize,
}

impl SweepPool {
    /// Starts a pool of `threads` workers (at least one).
    ///
    /// Workers park on the shared queue when idle and live until the
    /// pool is dropped.
    #[must_use]
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let (injector, queue) = channel::<Job>();
        let queue = Arc::new(Mutex::new(queue));
        for index in 0..threads {
            let queue = Arc::clone(&queue);
            thread::Builder::new()
                .name(format!("tlabp-sweep-{index}"))
                .spawn(move || worker_loop(&queue))
                .expect("spawn sweep worker");
        }
        SweepPool { injector, threads }
    }

    /// The process-wide pool, started on first use. Sized to the
    /// machine's available parallelism, unless the `TLABP_THREADS`
    /// environment variable holds a positive integer — then that wins
    /// (useful for benchmarking scaling or taming CI machines). A set
    /// but invalid value (empty, non-numeric, zero) is ignored with a
    /// warning on stderr.
    #[must_use]
    pub fn global() -> &'static SweepPool {
        static GLOBAL: OnceLock<SweepPool> = OnceLock::new();
        GLOBAL.get_or_init(|| {
            let detected = thread::available_parallelism().map_or(1, |n| n.get());
            let env = std::env::var("TLABP_THREADS").ok();
            SweepPool::new(configured_threads(env.as_deref(), detected))
        })
    }

    /// Number of worker threads.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Enqueues one job and returns immediately, without waiting for it
    /// (or anything else) to finish.
    ///
    /// This is the streaming primitive under
    /// [`Session`](crate::engine::Session): a session keeps a bounded
    /// window of spawned tasks in flight and collects their results over
    /// its own channel, so concurrent sessions sharing one pool
    /// interleave fairly — each holds at most its window's worth of the
    /// shared FIFO queue instead of enqueuing a whole plan at once.
    /// [`SweepPool::run`] remains the batch path (submit everything,
    /// block, reassemble).
    pub fn spawn(&self, job: impl FnOnce() + Send + 'static) {
        self.injector.send(Box::new(job)).expect("sweep pool workers alive");
    }

    /// Runs every job on the pool and returns their results in
    /// submission order (regardless of completion order).
    ///
    /// # Panics
    ///
    /// Panics if a job panicked on a worker: its result can never
    /// arrive.
    pub fn run<T, I, F>(&self, jobs: I) -> Vec<T>
    where
        T: Send + 'static,
        I: IntoIterator<Item = F>,
        F: FnOnce() -> T + Send + 'static,
    {
        let (results_in, results_out) = channel::<(usize, T)>();
        let mut submitted = 0usize;
        for (index, job) in jobs.into_iter().enumerate() {
            let results_in = results_in.clone();
            let boxed: Job = Box::new(move || {
                // Receiver dropped => caller already panicked; nothing to do.
                let _ = results_in.send((index, job()));
            });
            self.injector.send(boxed).expect("sweep pool workers alive");
            submitted += 1;
        }
        drop(results_in);

        let mut slots: Vec<Option<T>> = (0..submitted).map(|_| None).collect();
        for _ in 0..submitted {
            let (index, value) =
                results_out.recv().expect("a sweep job panicked before reporting its result");
            slots[index] = Some(value);
        }
        slots.into_iter().map(|slot| slot.expect("every job reports once")).collect()
    }
}

/// Resolves the global pool size: a positive integer in `env_value`
/// (the `TLABP_THREADS` variable) overrides the detected core count.
/// Anything unset falls back to `detected` silently; a set-but-invalid
/// value (empty, non-numeric, zero) also falls back but warns on stderr
/// — a typo'd override silently running at full width is the kind of
/// surprise that ruins a scaling benchmark.
fn configured_threads(env_value: Option<&str>, detected: usize) -> usize {
    match thread_override(env_value) {
        Ok(Some(threads)) => threads,
        Ok(None) => detected,
        Err(raw) => {
            eprintln!(
                "warning: ignoring TLABP_THREADS={raw:?} (expected a positive integer); \
                 using {detected} detected thread(s)"
            );
            detected
        }
    }
}

/// Parses the `TLABP_THREADS` override: `Ok(None)` when unset,
/// `Ok(Some(n))` for a positive integer, `Err(raw value)` for anything
/// else (empty, non-numeric, zero).
fn thread_override(env_value: Option<&str>) -> Result<Option<usize>, String> {
    let Some(raw) = env_value else { return Ok(None) };
    match raw.trim().parse::<usize>() {
        Ok(n) if n > 0 => Ok(Some(n)),
        _ => Err(raw.to_owned()),
    }
}

fn worker_loop(queue: &Mutex<Receiver<Job>>) {
    loop {
        // Hold the queue lock only while dequeuing, never while running.
        let job = match queue.lock() {
            Ok(receiver) => receiver.recv(),
            Err(_) => return, // a job panicked while dequeuing; shut down
        };
        match job {
            Ok(job) => job(),
            Err(_) => return, // pool dropped; no more work will arrive
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_come_back_in_submission_order() {
        let pool = SweepPool::new(4);
        let results = pool.run((0..64u64).map(|i| move || i * i));
        let expected: Vec<u64> = (0..64).map(|i| i * i).collect();
        assert_eq!(results, expected);
    }

    #[test]
    fn single_worker_matches_many_workers() {
        let one = SweepPool::new(1);
        let many = SweepPool::new(8);
        let jobs = |pool: &SweepPool| pool.run((0..40u64).map(|i| move || (i, i % 7)));
        assert_eq!(jobs(&one), jobs(&many));
    }

    #[test]
    fn pool_survives_across_batches() {
        let pool = SweepPool::new(2);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..5 {
            let counter = Arc::clone(&counter);
            let results = pool.run((0..10).map(move |_| {
                let counter = Arc::clone(&counter);
                move || counter.fetch_add(1, Ordering::SeqCst)
            }));
            assert_eq!(results.len(), 10);
        }
        assert_eq!(counter.load(Ordering::SeqCst), 50);
    }

    #[test]
    fn global_pool_is_shared_and_sized() {
        let a = SweepPool::global();
        let b = SweepPool::global();
        assert!(std::ptr::eq(a, b));
        assert!(a.threads() >= 1);
    }

    #[test]
    fn env_override_parses_positive_integers_only() {
        assert_eq!(configured_threads(Some("3"), 8), 3);
        assert_eq!(configured_threads(Some(" 12 "), 8), 12);
        assert_eq!(configured_threads(Some("0"), 8), 8, "zero falls back");
        assert_eq!(configured_threads(Some("-2"), 8), 8, "negative falls back");
        assert_eq!(configured_threads(Some("lots"), 8), 8, "garbage falls back");
        assert_eq!(configured_threads(Some(""), 8), 8);
        assert_eq!(configured_threads(None, 8), 8);
    }

    #[test]
    fn thread_override_distinguishes_unset_from_invalid() {
        // Unset is the normal case — no warning warranted.
        assert_eq!(thread_override(None), Ok(None));
        // Valid overrides win, whitespace tolerated.
        assert_eq!(thread_override(Some("1")), Ok(Some(1)));
        assert_eq!(thread_override(Some(" 12 ")), Ok(Some(12)));
        // Set-but-invalid values surface the raw text for the warning.
        assert_eq!(thread_override(Some("0")), Err("0".to_owned()));
        assert_eq!(thread_override(Some("")), Err(String::new()));
        assert_eq!(thread_override(Some("  ")), Err("  ".to_owned()));
        assert_eq!(thread_override(Some("-2")), Err("-2".to_owned()));
        assert_eq!(thread_override(Some("3.5")), Err("3.5".to_owned()));
        assert_eq!(thread_override(Some("lots")), Err("lots".to_owned()));
    }

    #[test]
    fn spawn_returns_before_the_job_runs_and_interleaves_with_run() {
        let pool = SweepPool::new(2);
        let (release_in, release_out) = channel::<()>();
        let (done_in, done_out) = channel::<u32>();
        // A spawned job that blocks until released: spawn must not wait
        // for it.
        let done = done_in.clone();
        pool.spawn(move || {
            release_out.recv().expect("released");
            done.send(1).expect("collector alive");
        });
        // The pool still serves run() batches while the spawned job is
        // parked on the second worker.
        assert_eq!(pool.run([|| 7]), vec![7]);
        release_in.send(()).expect("job waiting");
        assert_eq!(done_out.recv(), Ok(1));
    }

    #[test]
    fn zero_threads_rounds_up_to_one() {
        let pool = SweepPool::new(0);
        assert_eq!(pool.threads(), 1);
        assert_eq!(pool.run([|| 42]), vec![42]);
    }
}
