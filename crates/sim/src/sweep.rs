//! The sweep engine: a flat (scheme × benchmark) job matrix executed on
//! the persistent worker pool.
//!
//! Experiment drivers used to loop over configurations and fire one
//! short-lived thread per benchmark inside each `run_suite` call, on the
//! interpreted `dyn BranchPredictor` simulation path. The sweep engine
//! replaces that with three phases:
//!
//! 1. **Pre-generate** — every (benchmark, data set) trace the matrix
//!    needs is generated exactly once through the [`TraceStore`], as
//!    pool jobs, so no simulation cell ever blocks on the VM.
//! 2. **Execute** — the matrix is flattened into cells; idle workers
//!    pull the next cell as they finish (see [`SweepPool`]), so a slow
//!    benchmark under one scheme overlaps with everything else. Each
//!    cell builds a monomorphized [`AnyPredictor`](tlabp_core::any::AnyPredictor)
//!    and, when no context switches are simulated, runs the packed
//!    conditional-branch fast path ([`simulate_packed`]).
//! 3. **Reassemble** — cell results are stitched back into one
//!    [`SuiteResult`] per configuration, in the caller's configuration
//!    order and the benchmark order of [`Benchmark::ALL`]. Output is a
//!    pure function of the inputs: pool size and scheduling never leak
//!    into it (asserted by the 1-vs-N-thread determinism test).
//!
//! # Example
//!
//! ```no_run
//! use tlabp_core::config::SchemeConfig;
//! use tlabp_sim::runner::SimConfig;
//! use tlabp_sim::suite::TraceStore;
//! use tlabp_sim::sweep::run_sweep;
//!
//! let store = TraceStore::new();
//! let configs: Vec<_> = (6..=12).map(SchemeConfig::pag).collect();
//! for suite in run_sweep(&configs, &store, &SimConfig::default()) {
//!     println!("{}: {:.2}%", suite.scheme, suite.total_gmean() * 100.0);
//! }
//! ```

use tlabp_core::config::SchemeConfig;
use tlabp_workloads::{Benchmark, DataSet};

use crate::metrics::{BenchmarkAccuracy, SuiteResult};
use crate::pool::SweepPool;
use crate::runner::{simulate, simulate_packed, SimConfig};
use crate::suite::TraceStore;

/// Runs every configuration over every benchmark on the process-wide
/// [`SweepPool::global`] pool and returns one [`SuiteResult`] per
/// configuration, in the order of `configs`.
#[must_use]
pub fn run_sweep(
    configs: &[SchemeConfig],
    store: &TraceStore,
    sim: &SimConfig,
) -> Vec<SuiteResult> {
    run_sweep_on(SweepPool::global(), configs, store, sim)
}

/// [`run_sweep`] on an explicit pool — the determinism tests use this to
/// compare single-worker and many-worker executions.
#[must_use]
pub fn run_sweep_on(
    pool: &SweepPool,
    configs: &[SchemeConfig],
    store: &TraceStore,
    sim: &SimConfig,
) -> Vec<SuiteResult> {
    // Phase 1: pre-generate each needed trace once, in parallel.
    let needs_training = configs.iter().any(SchemeConfig::needs_training);
    let mut needed: Vec<(&'static Benchmark, DataSet)> = Vec::new();
    for benchmark in &Benchmark::ALL {
        needed.push((benchmark, DataSet::Testing));
        if needs_training && benchmark.has_training_set() {
            needed.push((benchmark, DataSet::Training));
        }
    }
    pool.run(needed.into_iter().map(|(benchmark, data_set)| {
        let store = store.clone();
        move || {
            let _generated = store.get(benchmark, data_set);
        }
    }));

    // Phase 2: flatten the matrix and let idle workers pull cells.
    let cells = configs.iter().flat_map(|config| {
        Benchmark::ALL.iter().map(|benchmark| {
            let config = *config;
            let sim = *sim;
            let store = store.clone();
            move || run_cell(&config, benchmark, &store, &sim)
        })
    });
    let mut rows = pool.run(cells).into_iter();

    // Phase 3: reassemble per-config suites in deterministic order.
    configs
        .iter()
        .map(|config| SuiteResult {
            scheme: config.to_string(),
            rows: rows.by_ref().take(Benchmark::ALL.len()).collect(),
        })
        .collect()
}

/// Evaluates one (scheme, benchmark) cell.
///
/// Training schemes on benchmarks without a training set yield the
/// unmeasured row (`accuracy: None`), as in `run_suite`. Cells without
/// context-switch simulation take the packed monomorphized fast path;
/// the differential tests pin it bit-identical to the boxed full-trace
/// loop.
fn run_cell(
    config: &SchemeConfig,
    benchmark: &Benchmark,
    store: &TraceStore,
    sim: &SimConfig,
) -> BenchmarkAccuracy {
    let mut effective_sim = *sim;
    if config.context_switch() && effective_sim.context_switch.is_none() {
        effective_sim = SimConfig::paper_context_switch();
    }

    let mut predictor = if config.needs_training() {
        if !benchmark.has_training_set() {
            return BenchmarkAccuracy {
                benchmark: benchmark.name().to_owned(),
                kind: benchmark.kind().into(),
                accuracy: None,
                context_switches: 0,
                predictions: 0,
            };
        }
        let training = store.get(benchmark, DataSet::Training);
        config.build_any_trained(&training)
    } else {
        config.build_any().expect("non-training scheme builds")
    };

    let result = if effective_sim.context_switch.is_none() {
        simulate_packed(&mut predictor, &store.get_packed(benchmark, DataSet::Testing))
    } else {
        simulate(&mut predictor, &store.get(benchmark, DataSet::Testing), &effective_sim)
    };
    BenchmarkAccuracy {
        benchmark: benchmark.name().to_owned(),
        kind: benchmark.kind().into(),
        accuracy: Some(result.accuracy()),
        context_switches: result.context_switches,
        predictions: result.predictions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_preserves_config_order() {
        let store = TraceStore::new();
        let configs = [SchemeConfig::pag(6), SchemeConfig::gag(6), SchemeConfig::btfn()];
        let suites = run_sweep(&configs, &store, &SimConfig::no_context_switch());
        assert_eq!(suites.len(), 3);
        for (config, suite) in configs.iter().zip(&suites) {
            assert_eq!(suite.scheme, config.to_string());
            assert_eq!(suite.rows.len(), Benchmark::ALL.len());
        }
        let names: Vec<&str> =
            suites[0].rows.iter().map(|r| r.benchmark.as_str()).collect();
        let expected: Vec<&str> = Benchmark::ALL.iter().map(Benchmark::name).collect();
        assert_eq!(names, expected, "rows follow Benchmark::ALL order");
    }

    #[test]
    fn sweep_pregenerates_all_testing_traces() {
        let store = TraceStore::new();
        let _ = run_sweep(&[SchemeConfig::btfn()], &store, &SimConfig::no_context_switch());
        assert_eq!(store.len(), Benchmark::ALL.len(), "one testing trace per benchmark");
    }

    #[test]
    fn training_traces_generated_only_when_needed() {
        let store = TraceStore::new();
        let _ = run_sweep(&[SchemeConfig::profiling()], &store, &SimConfig::no_context_switch());
        let with_training =
            Benchmark::ALL.iter().filter(|b| b.has_training_set()).count();
        assert_eq!(store.len(), Benchmark::ALL.len() + with_training);
    }
}
