//! Full-suite sweeps: the (scheme × benchmark) matrix as a plan.
//!
//! Historically this module owned its own three-phase executor
//! (pre-generate traces, flatten cells, reassemble suites). That logic
//! now lives in the general [`crate::engine`]; `run_sweep` survives as
//! the convenience entry point for the most common plan shape — every
//! configuration on every benchmark — expressed as
//! [`Plan::suites`](crate::plan::Plan::suites) and executed by
//! [`engine::execute_on`](crate::engine::execute_on).
//!
//! # Example
//!
//! ```no_run
//! use tlabp_core::config::SchemeConfig;
//! use tlabp_sim::runner::SimConfig;
//! use tlabp_sim::suite::TraceStore;
//! use tlabp_sim::sweep::run_sweep;
//!
//! let store = TraceStore::new();
//! let configs: Vec<_> = (6..=12).map(SchemeConfig::pag).collect();
//! for suite in run_sweep(&configs, &store, &SimConfig::default()) {
//!     println!("{}: {:.2}%", suite.scheme, suite.total_gmean() * 100.0);
//! }
//! ```

use tlabp_core::config::SchemeConfig;

use crate::engine;
use crate::metrics::SuiteResult;
use crate::plan::Plan;
use crate::pool::SweepPool;
use crate::runner::SimConfig;
use crate::suite::TraceStore;

/// Runs every configuration over every benchmark on the process-wide
/// [`SweepPool::global`] pool and returns one [`SuiteResult`] per
/// configuration, in the order of `configs`.
#[must_use]
pub fn run_sweep(
    configs: &[SchemeConfig],
    store: &TraceStore,
    sim: &SimConfig,
) -> Vec<SuiteResult> {
    run_sweep_on(SweepPool::global(), configs, store, sim)
}

/// [`run_sweep`] on an explicit pool — the determinism tests use this to
/// compare single-worker and many-worker executions.
#[must_use]
pub fn run_sweep_on(
    pool: &SweepPool,
    configs: &[SchemeConfig],
    store: &TraceStore,
    sim: &SimConfig,
) -> Vec<SuiteResult> {
    engine::execute_on(pool, &Plan::suites(configs, sim), store).suites()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tlabp_workloads::Benchmark;

    #[test]
    fn sweep_preserves_config_order() {
        let store = TraceStore::new();
        let configs = [SchemeConfig::pag(6), SchemeConfig::gag(6), SchemeConfig::btfn()];
        let suites = run_sweep(&configs, &store, &SimConfig::no_context_switch());
        assert_eq!(suites.len(), 3);
        for (config, suite) in configs.iter().zip(&suites) {
            assert_eq!(suite.scheme, config.to_string());
            assert_eq!(suite.rows.len(), Benchmark::ALL.len());
        }
        let names: Vec<&str> = suites[0].rows.iter().map(|r| r.benchmark.as_str()).collect();
        let expected: Vec<&str> = Benchmark::ALL.iter().map(Benchmark::name).collect();
        assert_eq!(names, expected, "rows follow Benchmark::ALL order");
    }

    #[test]
    fn sweep_pregenerates_all_testing_traces() {
        let store = TraceStore::new();
        let _ = run_sweep(&[SchemeConfig::btfn()], &store, &SimConfig::no_context_switch());
        assert_eq!(store.len(), Benchmark::ALL.len(), "one testing trace per benchmark");
    }

    #[test]
    fn traces_generated_only_for_measurable_cells() {
        let store = TraceStore::new();
        let _ = run_sweep(&[SchemeConfig::profiling()], &store, &SimConfig::no_context_switch());
        // A profiled scheme only runs where a training set exists, so the
        // engine generates a testing and a training trace for exactly
        // those benchmarks and never touches the rest.
        let with_training = Benchmark::ALL.iter().filter(|b| b.has_training_set()).count();
        assert_eq!(store.len(), 2 * with_training);
    }

    #[test]
    fn duplicate_configs_yield_separate_suites() {
        let store = TraceStore::new();
        let configs = [SchemeConfig::btfn(), SchemeConfig::btfn()];
        let suites = run_sweep(&configs, &store, &SimConfig::no_context_switch());
        assert_eq!(suites.len(), 2, "duplicate configs must not merge");
        assert_eq!(suites[0], suites[1]);
    }
}
