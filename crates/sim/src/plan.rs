//! The declarative job IR: describe *what* to measure, not *how*.
//!
//! A [`Job`] names four things — a predictor ([`PredictorSpec`]), a trace
//! ([`TraceKey`]), the simulation options ([`SimConfig`]) and the metrics
//! wanted ([`MetricSet`]). A [`Plan`] is an ordered batch of jobs. Every
//! experiment in the harness, from the paper's figures to the ablations
//! and the throughput benchmark, is a plan; the execution engine
//! ([`crate::engine`]) lowers each job onto the best execution path and
//! runs the whole batch on the worker pool.
//!
//! The IR is pure data: constructing a plan performs no simulation, no
//! trace generation and no predictor construction, so plans can be built,
//! inspected, stored and replayed (this is the seam a future server mode
//! plugs into — a request *is* a plan).
//!
//! # Example
//!
//! ```no_run
//! use tlabp_core::config::SchemeConfig;
//! use tlabp_sim::engine::execute;
//! use tlabp_sim::plan::Plan;
//! use tlabp_sim::runner::SimConfig;
//! use tlabp_sim::suite::TraceStore;
//!
//! let configs: Vec<_> = (6..=12).map(SchemeConfig::pag).collect();
//! let plan = Plan::suites(&configs, &SimConfig::no_context_switch());
//! let results = execute(&plan, &TraceStore::new());
//! for suite in results.suites() {
//!     println!("{}: {:.2}%", suite.scheme, suite.total_gmean() * 100.0);
//! }
//! ```

use tlabp_core::config::SchemeConfig;
use tlabp_workloads::{Benchmark, DataSet};

use crate::json::{Json, WireError};
use crate::runner::{ContextSwitchConfig, SimConfig};

/// Version tag of the serialized plan format ([`Plan::to_json_string`]).
///
/// Bumped on any change to the job encoding; decoders reject documents
/// whose version differs, the same posture the v2 artifact container
/// takes toward on-disk data.
pub const PLAN_WIRE_VERSION: u64 = 1;

/// Which predictor a job simulates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PredictorSpec {
    /// A Table 3 catalog configuration. Lowered to the monomorphized
    /// fast paths ([`tlabp_core::any::AnyPredictor`], and the packed
    /// conditional stream when no context switches are simulated).
    Scheme(SchemeConfig),
    /// A predictor registered under this name in
    /// [`tlabp_core::registry`]. Runs behind `Box<dyn BranchPredictor>`
    /// — the only path that still pays dynamic dispatch.
    Custom(String),
}

impl PredictorSpec {
    /// A registered-builder spec by name.
    #[must_use]
    pub fn custom(name: impl Into<String>) -> Self {
        PredictorSpec::Custom(name.into())
    }

    /// The display label: the Table 3 configuration string for schemes,
    /// the registered name for custom predictors. Result rows group into
    /// suites by this label.
    #[must_use]
    pub fn label(&self) -> String {
        match self {
            PredictorSpec::Scheme(config) => config.to_string(),
            PredictorSpec::Custom(name) => name.clone(),
        }
    }
}

impl From<SchemeConfig> for PredictorSpec {
    fn from(config: SchemeConfig) -> Self {
        PredictorSpec::Scheme(config)
    }
}

/// Which benchmark trace a job runs over.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceKey {
    /// The workload.
    pub benchmark: &'static Benchmark,
    /// Training or testing data set. Jobs normally measure on
    /// [`DataSet::Testing`]; training traces are consumed implicitly by
    /// profiled schemes.
    pub data_set: DataSet,
}

impl TraceKey {
    /// The testing trace of `benchmark` — the measurement input of every
    /// paper experiment.
    #[must_use]
    pub fn testing(benchmark: &'static Benchmark) -> Self {
        TraceKey { benchmark, data_set: DataSet::Testing }
    }
}

/// Geometry of the target cache used by the fetch-path metric
/// (Section 3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TargetCacheSpec {
    /// Number of cache entries.
    pub entries: usize,
    /// Set associativity.
    pub ways: usize,
}

impl TargetCacheSpec {
    /// The paper's 4-way 512-entry geometry.
    pub const PAPER_DEFAULT: TargetCacheSpec = TargetCacheSpec { entries: 512, ways: 4 };
}

impl Default for TargetCacheSpec {
    fn default() -> Self {
        TargetCacheSpec::PAPER_DEFAULT
    }
}

/// Which metrics a job should produce beyond the always-computed
/// prediction-accuracy counters.
///
/// The instrumented metrics replay the trace through dedicated
/// observation loops; they model no context switches (they reproduce the
/// paper's Section 3 analyses, which are measured without switches).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MetricSet {
    /// Attribute every misprediction to a cause (BHT miss, weak pattern,
    /// interference, intrinsic noise). Only meaningful for PAg-structured
    /// predictors; other predictors yield no breakdown.
    pub miss_breakdown: bool,
    /// Run the Section 3.2 fetch-path model (direction predictor plus a
    /// target cache over every branch class) with this cache geometry.
    pub fetch: Option<TargetCacheSpec>,
}

impl MetricSet {
    /// Only the accuracy counters (the default).
    pub const ACCURACY: MetricSet = MetricSet { miss_breakdown: false, fetch: None };
}

/// One unit of simulation work: predictor × trace × options × metrics.
#[derive(Debug, Clone, PartialEq)]
pub struct Job {
    /// What to simulate.
    pub spec: PredictorSpec,
    /// What to simulate it on.
    pub trace: TraceKey,
    /// Context-switch options. A scheme whose `c` flag is set upgrades a
    /// no-switch `sim` to the paper's context-switch model, exactly as
    /// `run_suite` always has.
    pub sim: SimConfig,
    /// Extra instrumented metrics to compute.
    pub metrics: MetricSet,
    /// Force the reference execution path (boxed `dyn` predictor over the
    /// full event trace), bypassing the fast paths. Used by the
    /// throughput harness as its baseline and by differential tests.
    pub reference_path: bool,
    /// Allow the engine to fuse this job with other jobs of the plan that
    /// share its trace into a single pass over the interned conditional
    /// stream (on by default; fusion never changes results). Jobs that
    /// lower to the full-trace or reference path, or that request
    /// instrumented metrics, are fusion-ineligible regardless. Disabling
    /// this forces the per-cell packed path — the throughput harness uses
    /// that as the fused mode's baseline.
    pub fuse: bool,
    /// Allow the engine to lower this job to the pattern-stream replay
    /// path (on by default; replay never changes results). Replay applies
    /// when the predictor is a catalog scheme whose first level maps to a
    /// [`crate::runner::StreamKey`] and the job is otherwise
    /// fusion-eligible: the engine then materializes the first-level
    /// stream once per (trace, key) and replays only the second level.
    /// Disabling this falls back to the fused / packed paths — the
    /// throughput harness uses that as the replay mode's baseline.
    pub replay: bool,
}

impl Job {
    /// A job measuring `config` on `benchmark`'s testing trace with no
    /// context switches and accuracy metrics only.
    #[must_use]
    pub fn scheme(config: SchemeConfig, benchmark: &'static Benchmark) -> Self {
        Job {
            spec: PredictorSpec::Scheme(config),
            trace: TraceKey::testing(benchmark),
            sim: SimConfig::no_context_switch(),
            metrics: MetricSet::ACCURACY,
            reference_path: false,
            fuse: true,
            replay: true,
        }
    }

    /// A job measuring the registered predictor `name` on `benchmark`'s
    /// testing trace.
    #[must_use]
    pub fn custom(name: impl Into<String>, benchmark: &'static Benchmark) -> Self {
        Job {
            spec: PredictorSpec::custom(name),
            trace: TraceKey::testing(benchmark),
            sim: SimConfig::no_context_switch(),
            metrics: MetricSet::ACCURACY,
            reference_path: false,
            fuse: true,
            replay: true,
        }
    }

    /// Replaces the simulation options.
    #[must_use]
    pub fn with_sim(mut self, sim: SimConfig) -> Self {
        self.sim = sim;
        self
    }

    /// Replaces the metric selection.
    #[must_use]
    pub fn with_metrics(mut self, metrics: MetricSet) -> Self {
        self.metrics = metrics;
        self
    }

    /// Forces (or releases) the reference execution path.
    #[must_use]
    pub fn with_reference_path(mut self, reference: bool) -> Self {
        self.reference_path = reference;
        self
    }

    /// Permits (or forbids) fusing this job into a shared trace pass.
    #[must_use]
    pub fn with_fusion(mut self, fuse: bool) -> Self {
        self.fuse = fuse;
        self
    }

    /// Permits (or forbids) lowering this job to pattern-stream replay.
    #[must_use]
    pub fn with_replay(mut self, replay: bool) -> Self {
        self.replay = replay;
        self
    }

    /// The job's display label (see [`PredictorSpec::label`]).
    #[must_use]
    pub fn label(&self) -> String {
        self.spec.label()
    }

    /// The job as a wire-format JSON value (see
    /// [`Plan::to_json_string`] for the enclosing document).
    ///
    /// Scheme specs serialize as their Table 3 configuration string —
    /// the notation already round-trips through
    /// [`SchemeConfig`]'s `Display`/`FromStr` pair, so the wire format
    /// inherits a stable, human-auditable encoding instead of
    /// duplicating the scheme structure field by field.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let spec = match &self.spec {
            PredictorSpec::Scheme(config) => {
                Json::object(vec![("scheme", Json::Str(config.to_string()))])
            }
            PredictorSpec::Custom(name) => Json::object(vec![("custom", Json::Str(name.clone()))]),
        };
        let data_set = match self.trace.data_set {
            DataSet::Training => "training",
            DataSet::Testing => "testing",
        };
        let context_switch = match &self.sim.context_switch {
            None => Json::Null,
            Some(cs) => Json::object(vec![
                ("interval_instructions", Json::UInt(cs.interval_instructions)),
                ("on_traps", Json::Bool(cs.on_traps)),
            ]),
        };
        let fetch = match self.metrics.fetch {
            None => Json::Null,
            Some(spec) => Json::object(vec![
                ("entries", Json::UInt(spec.entries as u64)),
                ("ways", Json::UInt(spec.ways as u64)),
            ]),
        };
        Json::object(vec![
            ("spec", spec),
            ("benchmark", Json::Str(self.trace.benchmark.name().to_owned())),
            ("data_set", Json::Str(data_set.to_owned())),
            ("context_switch", context_switch),
            (
                "metrics",
                Json::object(vec![
                    ("miss_breakdown", Json::Bool(self.metrics.miss_breakdown)),
                    ("fetch", fetch),
                ]),
            ),
            ("reference_path", Json::Bool(self.reference_path)),
            ("fuse", Json::Bool(self.fuse)),
            ("replay", Json::Bool(self.replay)),
        ])
    }

    /// Decodes a job from its [`Job::to_json`] encoding.
    ///
    /// # Errors
    ///
    /// Fails on missing or mistyped fields, an unknown benchmark name,
    /// or a scheme string [`SchemeConfig`] cannot parse. Custom names
    /// are *not* resolved against the predictor registry here — the
    /// plan stays pure data; the engine (or the service's admission
    /// check) resolves names at execution time.
    pub fn from_json(json: &Json) -> Result<Job, WireError> {
        let spec_json = json.field("spec")?;
        let spec = if let Some(text) = spec_json.get("scheme") {
            let text =
                text.as_str().ok_or_else(|| WireError::new("spec.scheme must be a string"))?;
            let config: SchemeConfig =
                text.parse().map_err(|e| WireError::new(format!("bad scheme {text:?}: {e}")))?;
            PredictorSpec::Scheme(config)
        } else if let Some(name) = spec_json.get("custom") {
            let name =
                name.as_str().ok_or_else(|| WireError::new("spec.custom must be a string"))?;
            PredictorSpec::custom(name)
        } else {
            return Err(WireError::new("spec needs a \"scheme\" or \"custom\" field"));
        };

        let bench_name = json
            .field("benchmark")?
            .as_str()
            .ok_or_else(|| WireError::new("benchmark must be a string"))?;
        let benchmark = Benchmark::by_name(bench_name)
            .ok_or_else(|| WireError::new(format!("unknown benchmark {bench_name:?}")))?;
        let data_set = match json.field("data_set")?.as_str() {
            Some("training") => DataSet::Training,
            Some("testing") => DataSet::Testing,
            _ => return Err(WireError::new("data_set must be \"training\" or \"testing\"")),
        };

        let cs_json = json.field("context_switch")?;
        let context_switch = if cs_json.is_null() {
            None
        } else {
            Some(ContextSwitchConfig {
                interval_instructions: cs_json
                    .field("interval_instructions")?
                    .as_u64()
                    .ok_or_else(|| WireError::new("interval_instructions must be an integer"))?,
                on_traps: cs_json
                    .field("on_traps")?
                    .as_bool()
                    .ok_or_else(|| WireError::new("on_traps must be a boolean"))?,
            })
        };

        let metrics_json = json.field("metrics")?;
        let fetch_json = metrics_json.field("fetch")?;
        let fetch = if fetch_json.is_null() {
            None
        } else {
            Some(TargetCacheSpec {
                entries: decode_usize(fetch_json.field("entries")?, "fetch.entries")?,
                ways: decode_usize(fetch_json.field("ways")?, "fetch.ways")?,
            })
        };
        let metrics = MetricSet {
            miss_breakdown: metrics_json
                .field("miss_breakdown")?
                .as_bool()
                .ok_or_else(|| WireError::new("miss_breakdown must be a boolean"))?,
            fetch,
        };

        let flag = |key: &str| -> Result<bool, WireError> {
            json.field(key)?
                .as_bool()
                .ok_or_else(|| WireError::new(format!("{key} must be a boolean")))
        };
        Ok(Job {
            spec,
            trace: TraceKey { benchmark, data_set },
            sim: SimConfig { context_switch },
            metrics,
            reference_path: flag("reference_path")?,
            fuse: flag("fuse")?,
            replay: flag("replay")?,
        })
    }
}

fn decode_usize(json: &Json, what: &str) -> Result<usize, WireError> {
    json.as_u64()
        .and_then(|n| usize::try_from(n).ok())
        .ok_or_else(|| WireError::new(format!("{what} must be an unsigned integer")))
}

/// An ordered batch of jobs. Execution order never affects results — the
/// engine reassembles outcomes in plan order regardless of which worker
/// finishes first.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Plan {
    jobs: Vec<Job>,
}

impl Plan {
    /// An empty plan.
    #[must_use]
    pub fn new() -> Self {
        Plan::default()
    }

    /// Appends a job.
    pub fn push(&mut self, job: Job) {
        self.jobs.push(job);
    }

    /// The jobs, in plan order.
    #[must_use]
    pub fn jobs(&self) -> &[Job] {
        &self.jobs
    }

    /// Number of jobs.
    #[must_use]
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// Whether the plan has no jobs.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// The plan as a wire-format JSON value:
    /// `{"version":1,"jobs":[...]}` with each job encoded by
    /// [`Job::to_json`].
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::object(vec![
            ("version", Json::UInt(PLAN_WIRE_VERSION)),
            ("jobs", Json::Array(self.jobs.iter().map(Job::to_json).collect())),
        ])
    }

    /// The plan's canonical serialized form: the [`Plan::to_json`]
    /// document rendered compactly with fixed field order. Equal plans
    /// produce byte-identical strings, so this text doubles as the
    /// service's memoization key and the input of [`Plan::wire_hash`].
    #[must_use]
    pub fn to_json_string(&self) -> String {
        self.to_json().render()
    }

    /// Decodes a plan from its serialized form (or any
    /// whitespace-formatted equivalent — hand-edited plan files parse
    /// too; only the *canonical* rendering is hashed).
    ///
    /// # Errors
    ///
    /// Fails on malformed JSON, a version other than
    /// [`PLAN_WIRE_VERSION`], or any job that does not decode
    /// ([`Job::from_json`]).
    pub fn from_json_str(text: &str) -> Result<Plan, WireError> {
        let json = Json::parse(text)?;
        let version = json
            .field("version")?
            .as_u64()
            .ok_or_else(|| WireError::new("version must be an integer"))?;
        if version != PLAN_WIRE_VERSION {
            return Err(WireError::new(format!(
                "unsupported plan version {version} (this build speaks {PLAN_WIRE_VERSION})"
            )));
        }
        let jobs = json
            .field("jobs")?
            .as_array()
            .ok_or_else(|| WireError::new("jobs must be an array"))?;
        jobs.iter().map(Job::from_json).collect::<Result<Plan, WireError>>()
    }

    /// A stable 64-bit digest of the plan: the artifact container's
    /// checksum ([`tlabp_trace::io::checksum`]) over the canonical
    /// serialized form. Equal plans hash equal on every build; the
    /// service memoizes responses and tags streamed [`ResultSet`]
    /// documents by this value.
    ///
    /// [`ResultSet`]: crate::engine::ResultSet
    #[must_use]
    pub fn wire_hash(&self) -> u64 {
        tlabp_trace::io::checksum(self.to_json_string().as_bytes())
    }

    /// [`Plan::wire_hash`] as the fixed-width hex string used in wire
    /// documents.
    #[must_use]
    pub fn wire_hash_hex(&self) -> String {
        format!("{:016x}", self.wire_hash())
    }

    /// The full-suite matrix: every configuration on every benchmark
    /// (configuration-major, benchmarks in [`Benchmark::ALL`] order), all
    /// with the same simulation options. [`ResultSet::suites`]
    /// reassembles the outcomes into one
    /// [`SuiteResult`](crate::metrics::SuiteResult) per configuration.
    ///
    /// [`ResultSet::suites`]: crate::engine::ResultSet::suites
    #[must_use]
    pub fn suites(configs: &[SchemeConfig], sim: &SimConfig) -> Plan {
        configs
            .iter()
            .flat_map(|&config| {
                Benchmark::ALL
                    .iter()
                    .map(move |benchmark| Job::scheme(config, benchmark).with_sim(*sim))
            })
            .collect()
    }
}

impl FromIterator<Job> for Plan {
    fn from_iter<I: IntoIterator<Item = Job>>(iter: I) -> Self {
        Plan { jobs: iter.into_iter().collect() }
    }
}

impl Extend<Job> for Plan {
    fn extend<I: IntoIterator<Item = Job>>(&mut self, iter: I) {
        self.jobs.extend(iter);
    }
}

impl IntoIterator for Plan {
    type Item = Job;
    type IntoIter = std::vec::IntoIter<Job>;

    fn into_iter(self) -> Self::IntoIter {
        self.jobs.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suites_matrix_is_config_major() {
        let configs = [SchemeConfig::pag(8), SchemeConfig::gag(10)];
        let plan = Plan::suites(&configs, &SimConfig::no_context_switch());
        assert_eq!(plan.len(), 2 * Benchmark::ALL.len());
        let first = &plan.jobs()[0];
        assert_eq!(first.label(), configs[0].to_string());
        assert_eq!(first.trace.benchmark.name(), Benchmark::ALL[0].name());
        let second_block = &plan.jobs()[Benchmark::ALL.len()];
        assert_eq!(second_block.label(), configs[1].to_string());
    }

    #[test]
    fn job_builders_compose() {
        let benchmark = Benchmark::by_name("li").unwrap();
        let job = Job::scheme(SchemeConfig::pag(12), benchmark)
            .with_sim(SimConfig::paper_context_switch())
            .with_metrics(MetricSet { miss_breakdown: true, fetch: None })
            .with_reference_path(true);
        assert!(job.reference_path);
        assert!(job.metrics.miss_breakdown);
        assert!(job.sim.context_switch.is_some());

        let custom = Job::custom("gshare(12)", benchmark);
        assert_eq!(custom.label(), "gshare(12)");
        assert_eq!(custom.trace.data_set, DataSet::Testing);
    }

    #[test]
    fn wire_round_trip_preserves_every_job_field() {
        let li = Benchmark::by_name("li").unwrap();
        let plan: Plan = [
            Job::scheme(SchemeConfig::pag(12), li),
            Job::scheme(SchemeConfig::gag(10).with_context_switch(true), li),
            Job::scheme(
                SchemeConfig::pap(8).with_bht(tlabp_core::bht::BhtConfig::Ideal),
                Benchmark::by_name("eqntott").unwrap(),
            )
            .with_reference_path(true),
            Job::scheme(SchemeConfig::profiling(), li).with_sim(SimConfig::paper_context_switch()),
            Job::custom("gshare(12)", li).with_fusion(false).with_replay(false),
            Job::scheme(SchemeConfig::btfn(), li).with_metrics(MetricSet {
                miss_breakdown: true,
                fetch: Some(TargetCacheSpec { entries: 256, ways: 2 }),
            }),
            Job {
                trace: TraceKey { benchmark: li, data_set: DataSet::Training },
                ..Job::scheme(SchemeConfig::gsg(6), li)
            },
        ]
        .into_iter()
        .collect();

        let text = plan.to_json_string();
        let back = Plan::from_json_str(&text).expect("canonical form parses");
        assert_eq!(back, plan);
        assert_eq!(back.to_json_string(), text, "re-render is byte-identical");
        assert_eq!(back.wire_hash(), plan.wire_hash());
        assert_eq!(plan.wire_hash_hex().len(), 16);

        let other: Plan = [Job::scheme(SchemeConfig::pag(10), li)].into_iter().collect();
        assert_ne!(other.wire_hash(), plan.wire_hash(), "different plans hash differently");
    }

    #[test]
    fn wire_decode_rejects_bad_documents() {
        let li = Benchmark::by_name("li").unwrap();
        let good: Plan = [Job::scheme(SchemeConfig::pag(8), li)].into_iter().collect();
        let text = good.to_json_string();

        let wrong_version = text.replacen("\"version\":1", "\"version\":2", 1);
        let err = Plan::from_json_str(&wrong_version).unwrap_err();
        assert!(err.to_string().contains("version"), "{err}");

        let bad_bench = text.replace("\"benchmark\":\"li\"", "\"benchmark\":\"no-such\"");
        assert!(Plan::from_json_str(&bad_bench).is_err());

        let bad_scheme = text.replace("PAg", "QQQ");
        assert!(Plan::from_json_str(&bad_scheme).is_err());

        assert!(Plan::from_json_str("{\"version\":1}").is_err(), "missing jobs");
        assert!(Plan::from_json_str("not json").is_err());
    }

    #[test]
    fn plan_collects_and_extends() {
        let benchmark = Benchmark::by_name("li").unwrap();
        let mut plan: Plan = (6..9).map(|k| Job::scheme(SchemeConfig::gag(k), benchmark)).collect();
        plan.extend([Job::custom("x", benchmark)]);
        assert_eq!(plan.len(), 4);
        assert!(!plan.is_empty());
        assert!(Plan::new().is_empty());
    }
}
