//! The declarative job IR: describe *what* to measure, not *how*.
//!
//! A [`Job`] names four things — a predictor ([`PredictorSpec`]), a trace
//! ([`TraceKey`]), the simulation options ([`SimConfig`]) and the metrics
//! wanted ([`MetricSet`]). A [`Plan`] is an ordered batch of jobs. Every
//! experiment in the harness, from the paper's figures to the ablations
//! and the throughput benchmark, is a plan; the execution engine
//! ([`crate::engine`]) lowers each job onto the best execution path and
//! runs the whole batch on the worker pool.
//!
//! The IR is pure data: constructing a plan performs no simulation, no
//! trace generation and no predictor construction, so plans can be built,
//! inspected, stored and replayed (this is the seam a future server mode
//! plugs into — a request *is* a plan).
//!
//! # Example
//!
//! ```no_run
//! use tlabp_core::config::SchemeConfig;
//! use tlabp_sim::engine::execute;
//! use tlabp_sim::plan::Plan;
//! use tlabp_sim::runner::SimConfig;
//! use tlabp_sim::suite::TraceStore;
//!
//! let configs: Vec<_> = (6..=12).map(SchemeConfig::pag).collect();
//! let plan = Plan::suites(&configs, &SimConfig::no_context_switch());
//! let results = execute(&plan, &TraceStore::new());
//! for suite in results.suites() {
//!     println!("{}: {:.2}%", suite.scheme, suite.total_gmean() * 100.0);
//! }
//! ```

use tlabp_core::config::SchemeConfig;
use tlabp_workloads::{Benchmark, DataSet};

use crate::runner::SimConfig;

/// Which predictor a job simulates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PredictorSpec {
    /// A Table 3 catalog configuration. Lowered to the monomorphized
    /// fast paths ([`tlabp_core::any::AnyPredictor`], and the packed
    /// conditional stream when no context switches are simulated).
    Scheme(SchemeConfig),
    /// A predictor registered under this name in
    /// [`tlabp_core::registry`]. Runs behind `Box<dyn BranchPredictor>`
    /// — the only path that still pays dynamic dispatch.
    Custom(String),
}

impl PredictorSpec {
    /// A registered-builder spec by name.
    #[must_use]
    pub fn custom(name: impl Into<String>) -> Self {
        PredictorSpec::Custom(name.into())
    }

    /// The display label: the Table 3 configuration string for schemes,
    /// the registered name for custom predictors. Result rows group into
    /// suites by this label.
    #[must_use]
    pub fn label(&self) -> String {
        match self {
            PredictorSpec::Scheme(config) => config.to_string(),
            PredictorSpec::Custom(name) => name.clone(),
        }
    }
}

impl From<SchemeConfig> for PredictorSpec {
    fn from(config: SchemeConfig) -> Self {
        PredictorSpec::Scheme(config)
    }
}

/// Which benchmark trace a job runs over.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceKey {
    /// The workload.
    pub benchmark: &'static Benchmark,
    /// Training or testing data set. Jobs normally measure on
    /// [`DataSet::Testing`]; training traces are consumed implicitly by
    /// profiled schemes.
    pub data_set: DataSet,
}

impl TraceKey {
    /// The testing trace of `benchmark` — the measurement input of every
    /// paper experiment.
    #[must_use]
    pub fn testing(benchmark: &'static Benchmark) -> Self {
        TraceKey { benchmark, data_set: DataSet::Testing }
    }
}

/// Geometry of the target cache used by the fetch-path metric
/// (Section 3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TargetCacheSpec {
    /// Number of cache entries.
    pub entries: usize,
    /// Set associativity.
    pub ways: usize,
}

impl TargetCacheSpec {
    /// The paper's 4-way 512-entry geometry.
    pub const PAPER_DEFAULT: TargetCacheSpec = TargetCacheSpec { entries: 512, ways: 4 };
}

impl Default for TargetCacheSpec {
    fn default() -> Self {
        TargetCacheSpec::PAPER_DEFAULT
    }
}

/// Which metrics a job should produce beyond the always-computed
/// prediction-accuracy counters.
///
/// The instrumented metrics replay the trace through dedicated
/// observation loops; they model no context switches (they reproduce the
/// paper's Section 3 analyses, which are measured without switches).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MetricSet {
    /// Attribute every misprediction to a cause (BHT miss, weak pattern,
    /// interference, intrinsic noise). Only meaningful for PAg-structured
    /// predictors; other predictors yield no breakdown.
    pub miss_breakdown: bool,
    /// Run the Section 3.2 fetch-path model (direction predictor plus a
    /// target cache over every branch class) with this cache geometry.
    pub fetch: Option<TargetCacheSpec>,
}

impl MetricSet {
    /// Only the accuracy counters (the default).
    pub const ACCURACY: MetricSet = MetricSet { miss_breakdown: false, fetch: None };
}

/// One unit of simulation work: predictor × trace × options × metrics.
#[derive(Debug, Clone, PartialEq)]
pub struct Job {
    /// What to simulate.
    pub spec: PredictorSpec,
    /// What to simulate it on.
    pub trace: TraceKey,
    /// Context-switch options. A scheme whose `c` flag is set upgrades a
    /// no-switch `sim` to the paper's context-switch model, exactly as
    /// `run_suite` always has.
    pub sim: SimConfig,
    /// Extra instrumented metrics to compute.
    pub metrics: MetricSet,
    /// Force the reference execution path (boxed `dyn` predictor over the
    /// full event trace), bypassing the fast paths. Used by the
    /// throughput harness as its baseline and by differential tests.
    pub reference_path: bool,
    /// Allow the engine to fuse this job with other jobs of the plan that
    /// share its trace into a single pass over the interned conditional
    /// stream (on by default; fusion never changes results). Jobs that
    /// lower to the full-trace or reference path, or that request
    /// instrumented metrics, are fusion-ineligible regardless. Disabling
    /// this forces the per-cell packed path — the throughput harness uses
    /// that as the fused mode's baseline.
    pub fuse: bool,
    /// Allow the engine to lower this job to the pattern-stream replay
    /// path (on by default; replay never changes results). Replay applies
    /// when the predictor is a catalog scheme whose first level maps to a
    /// [`crate::runner::StreamKey`] and the job is otherwise
    /// fusion-eligible: the engine then materializes the first-level
    /// stream once per (trace, key) and replays only the second level.
    /// Disabling this falls back to the fused / packed paths — the
    /// throughput harness uses that as the replay mode's baseline.
    pub replay: bool,
}

impl Job {
    /// A job measuring `config` on `benchmark`'s testing trace with no
    /// context switches and accuracy metrics only.
    #[must_use]
    pub fn scheme(config: SchemeConfig, benchmark: &'static Benchmark) -> Self {
        Job {
            spec: PredictorSpec::Scheme(config),
            trace: TraceKey::testing(benchmark),
            sim: SimConfig::no_context_switch(),
            metrics: MetricSet::ACCURACY,
            reference_path: false,
            fuse: true,
            replay: true,
        }
    }

    /// A job measuring the registered predictor `name` on `benchmark`'s
    /// testing trace.
    #[must_use]
    pub fn custom(name: impl Into<String>, benchmark: &'static Benchmark) -> Self {
        Job {
            spec: PredictorSpec::custom(name),
            trace: TraceKey::testing(benchmark),
            sim: SimConfig::no_context_switch(),
            metrics: MetricSet::ACCURACY,
            reference_path: false,
            fuse: true,
            replay: true,
        }
    }

    /// Replaces the simulation options.
    #[must_use]
    pub fn with_sim(mut self, sim: SimConfig) -> Self {
        self.sim = sim;
        self
    }

    /// Replaces the metric selection.
    #[must_use]
    pub fn with_metrics(mut self, metrics: MetricSet) -> Self {
        self.metrics = metrics;
        self
    }

    /// Forces (or releases) the reference execution path.
    #[must_use]
    pub fn with_reference_path(mut self, reference: bool) -> Self {
        self.reference_path = reference;
        self
    }

    /// Permits (or forbids) fusing this job into a shared trace pass.
    #[must_use]
    pub fn with_fusion(mut self, fuse: bool) -> Self {
        self.fuse = fuse;
        self
    }

    /// Permits (or forbids) lowering this job to pattern-stream replay.
    #[must_use]
    pub fn with_replay(mut self, replay: bool) -> Self {
        self.replay = replay;
        self
    }

    /// The job's display label (see [`PredictorSpec::label`]).
    #[must_use]
    pub fn label(&self) -> String {
        self.spec.label()
    }
}

/// An ordered batch of jobs. Execution order never affects results — the
/// engine reassembles outcomes in plan order regardless of which worker
/// finishes first.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Plan {
    jobs: Vec<Job>,
}

impl Plan {
    /// An empty plan.
    #[must_use]
    pub fn new() -> Self {
        Plan::default()
    }

    /// Appends a job.
    pub fn push(&mut self, job: Job) {
        self.jobs.push(job);
    }

    /// The jobs, in plan order.
    #[must_use]
    pub fn jobs(&self) -> &[Job] {
        &self.jobs
    }

    /// Number of jobs.
    #[must_use]
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// Whether the plan has no jobs.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// The full-suite matrix: every configuration on every benchmark
    /// (configuration-major, benchmarks in [`Benchmark::ALL`] order), all
    /// with the same simulation options. [`ResultSet::suites`]
    /// reassembles the outcomes into one
    /// [`SuiteResult`](crate::metrics::SuiteResult) per configuration.
    ///
    /// [`ResultSet::suites`]: crate::engine::ResultSet::suites
    #[must_use]
    pub fn suites(configs: &[SchemeConfig], sim: &SimConfig) -> Plan {
        configs
            .iter()
            .flat_map(|&config| {
                Benchmark::ALL
                    .iter()
                    .map(move |benchmark| Job::scheme(config, benchmark).with_sim(*sim))
            })
            .collect()
    }
}

impl FromIterator<Job> for Plan {
    fn from_iter<I: IntoIterator<Item = Job>>(iter: I) -> Self {
        Plan { jobs: iter.into_iter().collect() }
    }
}

impl Extend<Job> for Plan {
    fn extend<I: IntoIterator<Item = Job>>(&mut self, iter: I) {
        self.jobs.extend(iter);
    }
}

impl IntoIterator for Plan {
    type Item = Job;
    type IntoIter = std::vec::IntoIter<Job>;

    fn into_iter(self) -> Self::IntoIter {
        self.jobs.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suites_matrix_is_config_major() {
        let configs = [SchemeConfig::pag(8), SchemeConfig::gag(10)];
        let plan = Plan::suites(&configs, &SimConfig::no_context_switch());
        assert_eq!(plan.len(), 2 * Benchmark::ALL.len());
        let first = &plan.jobs()[0];
        assert_eq!(first.label(), configs[0].to_string());
        assert_eq!(first.trace.benchmark.name(), Benchmark::ALL[0].name());
        let second_block = &plan.jobs()[Benchmark::ALL.len()];
        assert_eq!(second_block.label(), configs[1].to_string());
    }

    #[test]
    fn job_builders_compose() {
        let benchmark = Benchmark::by_name("li").unwrap();
        let job = Job::scheme(SchemeConfig::pag(12), benchmark)
            .with_sim(SimConfig::paper_context_switch())
            .with_metrics(MetricSet { miss_breakdown: true, fetch: None })
            .with_reference_path(true);
        assert!(job.reference_path);
        assert!(job.metrics.miss_breakdown);
        assert!(job.sim.context_switch.is_some());

        let custom = Job::custom("gshare(12)", benchmark);
        assert_eq!(custom.label(), "gshare(12)");
        assert_eq!(custom.trace.data_set, DataSet::Testing);
    }

    #[test]
    fn plan_collects_and_extends() {
        let benchmark = Benchmark::by_name("li").unwrap();
        let mut plan: Plan = (6..9).map(|k| Job::scheme(SchemeConfig::gag(k), benchmark)).collect();
        plan.extend([Job::custom("x", benchmark)]);
        assert_eq!(plan.len(), 4);
        assert!(!plan.is_empty());
        assert!(Plan::new().is_empty());
    }
}
