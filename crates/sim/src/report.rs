//! Report formatting: ASCII tables and CSV for the experiment harness.

use std::fmt::Write as _;

use crate::metrics::SuiteResult;

/// A simple column-aligned text table with CSV export.
///
/// # Example
///
/// ```
/// use tlabp_sim::report::Table;
///
/// let mut table = Table::new(vec!["scheme".into(), "accuracy".into()]);
/// table.push_row(vec!["PAg(12)".into(), "97.1%".into()]);
/// let text = table.to_ascii();
/// assert!(text.contains("PAg(12)"));
/// assert_eq!(table.to_csv().lines().count(), 2);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    #[must_use]
    pub fn new(headers: Vec<String>) -> Self {
        Table { headers, rows: Vec::new() }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn push_row(&mut self, row: Vec<String>) {
        assert_eq!(
            row.len(),
            self.headers.len(),
            "row width {} != header width {}",
            row.len(),
            self.headers.len()
        );
        self.rows.push(row);
    }

    /// Number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders a column-aligned ASCII table.
    #[must_use]
    pub fn to_ascii(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let emit_row = |out: &mut String, cells: &[String]| {
            for (i, (cell, width)) in cells.iter().zip(&widths).enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{cell:<width$}");
            }
            out.push('\n');
        };
        emit_row(&mut out, &self.headers);
        let rule: usize = widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1));
        out.push_str(&"-".repeat(rule));
        out.push('\n');
        for row in &self.rows {
            emit_row(&mut out, row);
        }
        out
    }

    /// Renders RFC-4180-ish CSV (cells containing commas or quotes are
    /// quoted).
    #[must_use]
    pub fn to_csv(&self) -> String {
        let escape = |cell: &str| -> String {
            if cell.contains([',', '"', '\n']) {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_owned()
            }
        };
        let mut out = String::new();
        let mut emit = |cells: &[String]| {
            let line: Vec<String> = cells.iter().map(|c| escape(c)).collect();
            out.push_str(&line.join(","));
            out.push('\n');
        };
        emit(&self.headers);
        for row in &self.rows {
            emit(row);
        }
        out
    }
}

/// Formats an accuracy as a percentage with two decimals (`"97.13"`), or
/// `"--"` for missing values — the paper's ungraphed data points.
#[must_use]
pub fn format_accuracy(accuracy: Option<f64>) -> String {
    match accuracy {
        Some(a) => format!("{:.2}", a * 100.0),
        None => "--".to_owned(),
    }
}

/// Builds the standard per-benchmark accuracy table (one row per scheme,
/// columns: benchmarks then Int/FP/Tot geometric means) in the layout of
/// the paper's figures.
#[must_use]
pub fn suite_table(results: &[SuiteResult]) -> Table {
    let mut headers = vec!["scheme".to_owned()];
    if let Some(first) = results.first() {
        headers.extend(first.rows.iter().map(|r| r.benchmark.clone()));
    }
    headers.extend(["Int GMean".to_owned(), "FP GMean".to_owned(), "Tot GMean".to_owned()]);

    let mut table = Table::new(headers);
    for result in results {
        let mut row = vec![result.scheme.clone()];
        row.extend(result.rows.iter().map(|r| format_accuracy(r.accuracy)));
        row.push(format_accuracy(Some(result.int_gmean())));
        row.push(format_accuracy(Some(result.fp_gmean())));
        row.push(format_accuracy(Some(result.total_gmean())));
        table.push_row(row);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{BenchmarkAccuracy, BenchmarkCategory};

    #[test]
    fn ascii_alignment() {
        let mut t = Table::new(vec!["a".into(), "bb".into()]);
        t.push_row(vec!["xxxx".into(), "y".into()]);
        let text = t.to_ascii();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("a   "), "{:?}", lines[0]);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn rejects_ragged_rows() {
        let mut t = Table::new(vec!["a".into()]);
        t.push_row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn csv_escaping() {
        let mut t = Table::new(vec!["name".into()]);
        t.push_row(vec!["PAg(BHT(512,4,12-sr),c)".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"PAg(BHT(512,4,12-sr),c)\""));
    }

    #[test]
    fn csv_quotes_cells_with_commas() {
        let mut t = Table::new(vec!["a".into(), "b".into()]);
        t.push_row(vec!["x,y".into(), "plain".into()]);
        assert_eq!(t.to_csv(), "a,b\n\"x,y\",plain\n");
    }

    #[test]
    fn csv_doubles_embedded_quotes() {
        let mut t = Table::new(vec!["a".into()]);
        t.push_row(vec!["say \"hi\"".into()]);
        assert_eq!(t.to_csv(), "a\n\"say \"\"hi\"\"\"\n");
    }

    #[test]
    fn csv_quotes_cells_with_newlines() {
        let mut t = Table::new(vec!["a".into()]);
        t.push_row(vec!["two\nlines".into()]);
        assert_eq!(t.to_csv(), "a\n\"two\nlines\"\n");
    }

    #[test]
    fn csv_escapes_headers_too() {
        let t = Table::new(vec!["k,v".into()]);
        assert_eq!(t.to_csv(), "\"k,v\"\n");
    }

    #[test]
    fn csv_leaves_plain_cells_unquoted() {
        let mut t = Table::new(vec!["a".into(), "b".into()]);
        t.push_row(vec!["97.13".into(), "BTFN".into()]);
        assert_eq!(t.to_csv(), "a,b\n97.13,BTFN\n");
    }

    #[test]
    fn accuracy_formatting() {
        assert_eq!(format_accuracy(Some(0.9713)), "97.13");
        assert_eq!(format_accuracy(None), "--");
    }

    #[test]
    fn suite_table_layout() {
        let result = SuiteResult {
            scheme: "GAg(test)".to_owned(),
            rows: vec![BenchmarkAccuracy {
                benchmark: "li".to_owned(),
                kind: BenchmarkCategory::Integer,
                accuracy: Some(0.9),
                context_switches: 0,
                predictions: 100,
            }],
        };
        let table = suite_table(&[result]);
        let csv = table.to_csv();
        assert!(csv.starts_with("scheme,li,Int GMean,FP GMean,Tot GMean"));
        assert!(csv.contains("90.00"));
    }
}
