//! Bounded-memory streaming of persisted pattern streams.
//!
//! The replay kernels normally walk a fully hydrated
//! [`tlabp_trace::PatternStream`]. For traces whose derived streams are
//! larger than the memory we want to spend, this module reads a v3
//! chunked artifact ([`tlabp_trace::io::ChunkedArtifact`]) one chunk at
//! a time instead: a [`StreamCursor`] owns a dedicated decode thread
//! that reads, checksum-verifies and varint-decodes chunk *N + k* while
//! the replay kernel consumes chunk *N*, with a bounded ring between
//! them so resident bytes never exceed the configured window.
//!
//! Resident bytes are accounted through a shared [`StreamWindow`]
//! gauge: every decoded [`StreamChunk`] holds a lease that is released
//! when the chunk is dropped, so `TraceStore::cache_bytes` can report
//! the streaming window next to the hydrated tiers and benches can
//! record the peak.
//!
//! Streaming replay is bit-identical to in-memory replay: replay is a
//! left fold over the event sequence (each bank carries its own state
//! across blocks and banks never interact), so any order-preserving
//! chunking produces the same counts. The differential suite in
//! `tests/streaming.rs` pins this per scheme × automaton × kernel tier.

use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{sync_channel, Receiver};
use std::sync::Arc;

use tlabp_trace::io::{ChunkedArtifact, ReadTraceError, StreamSectionInfo};

/// Environment variable bounding the streaming replay window, in bytes.
///
/// Unset (or set to `0` or the empty string) disables the streaming
/// tier: the engine hydrates whole pattern streams as before. Any
/// positive value turns streaming replay on with that resident-byte
/// target; unparseable values warn and fall back to
/// [`DEFAULT_STREAM_BYTES`].
pub const STREAM_BYTES_ENV: &str = "TLABP_STREAM_BYTES";

/// Streaming window used when [`STREAM_BYTES_ENV`] is set but
/// unparseable: 64 MiB.
pub const DEFAULT_STREAM_BYTES: usize = 64 << 20;

/// Reads the streaming window from [`STREAM_BYTES_ENV`].
///
/// `None` means the streaming tier is off (the default). The window is
/// a target, not a hard guarantee: the pipeline always keeps at least
/// one decoded chunk in flight and one at the consumer, so a window
/// smaller than three chunks of the artifact's chunk budget
/// (`TLABP_CHUNK_BYTES`) is exceeded by the difference.
#[must_use]
pub fn stream_bytes_from_env() -> Option<usize> {
    let raw = std::env::var(STREAM_BYTES_ENV).ok()?;
    let raw = raw.trim();
    if raw.is_empty() || raw == "0" {
        return None;
    }
    match raw.parse::<usize>() {
        Ok(bytes) => Some(bytes),
        Err(_) => {
            eprintln!(
                "warning: {STREAM_BYTES_ENV}={raw:?} is not a byte count; \
                 using {DEFAULT_STREAM_BYTES}"
            );
            Some(DEFAULT_STREAM_BYTES)
        }
    }
}

/// Shared gauge of bytes resident in streaming replay windows.
///
/// `current` rises when a [`StreamChunk`] is decoded and falls when it
/// is dropped; `peak` is the high-water mark since construction (or the
/// last [`StreamWindow::reset_peak`]).
#[derive(Debug, Default)]
pub struct StreamWindow {
    current: AtomicUsize,
    peak: AtomicUsize,
}

impl StreamWindow {
    /// A zeroed gauge.
    #[must_use]
    pub fn new() -> StreamWindow {
        StreamWindow::default()
    }

    fn add(&self, bytes: usize) {
        let now = self.current.fetch_add(bytes, Ordering::Relaxed) + bytes;
        self.peak.fetch_max(now, Ordering::Relaxed);
    }

    fn sub(&self, bytes: usize) {
        self.current.fetch_sub(bytes, Ordering::Relaxed);
    }

    /// Bytes currently resident across every open streaming window.
    #[must_use]
    pub fn current(&self) -> usize {
        self.current.load(Ordering::Relaxed)
    }

    /// High-water mark of [`StreamWindow::current`].
    #[must_use]
    pub fn peak(&self) -> usize {
        self.peak.load(Ordering::Relaxed)
    }

    /// Resets the high-water mark to the current residency (used by the
    /// bench harness between measured phases).
    pub fn reset_peak(&self) {
        self.peak.store(self.current(), Ordering::Relaxed);
    }
}

/// Releases a chunk's resident bytes back to the gauge on drop.
#[derive(Debug)]
struct WindowLease {
    window: Arc<StreamWindow>,
    bytes: usize,
}

impl Drop for WindowLease {
    fn drop(&mut self) {
        self.window.sub(self.bytes);
    }
}

/// One decoded chunk of a persisted pattern stream.
///
/// Holds a [`StreamWindow`] lease for its resident bytes; dropping the
/// chunk releases them.
#[derive(Debug)]
pub struct StreamChunk {
    events: Vec<u32>,
    lanes: Vec<u32>,
    #[allow(dead_code)] // held for its Drop impl
    lease: WindowLease,
}

impl StreamChunk {
    /// The chunk's packed `(pattern, outcome)` events, in stream order.
    #[must_use]
    pub fn events(&self) -> &[u32] {
        &self.events
    }

    /// The chunk's per-event lane indices (empty for unlaned streams).
    #[must_use]
    pub fn lanes(&self) -> &[u32] {
        &self.lanes
    }
}

type ChunkResult = Result<StreamChunk, ReadTraceError>;

/// A pattern-stream section being streamed chunk-by-chunk from a v3
/// artifact, with a bounded decode-ahead ring.
///
/// The decode thread is dedicated (not a `SweepPool` worker): replay
/// batches already occupy every pool worker, so borrowing one for the
/// producer could deadlock the consumer behind its own decode.
#[derive(Debug)]
pub struct StreamCursor {
    info: StreamSectionInfo,
    fingerprint: u64,
    ring: Option<Receiver<ChunkResult>>,
    producer: Option<std::thread::JoinHandle<()>>,
    delivered: usize,
}

impl StreamCursor {
    /// Opens the pattern-stream section persisted under `key` inside
    /// the v3 artifact at `path` and starts the decode thread.
    ///
    /// Returns `None` when the artifact cannot be opened, holds no such
    /// section, or the section's chunk table is inconsistent — the
    /// caller falls back to in-memory replay. Errors on chunk *bodies*
    /// (checksum mismatches, truncation) surface later, through
    /// [`StreamCursor::next_chunk`].
    ///
    /// `stream_bytes` bounds the resident window: the ring holds at
    /// most `stream_bytes / chunk_bytes - 2` decoded chunks (at least
    /// one), so with the producer's chunk and the consumer's chunk the
    /// residency target is met whenever the window spans ≥ 3 chunks.
    #[must_use]
    pub fn open(
        path: &Path,
        key: &[u8],
        stream_bytes: usize,
        window: &Arc<StreamWindow>,
    ) -> Option<StreamCursor> {
        let mut artifact = ChunkedArtifact::open(path).ok()?;
        let fingerprint = artifact.fingerprint();
        let info = artifact.find_stream(key)?;
        let total: u64 = info.chunk_items.iter().sum();
        if total != info.events || usize::try_from(info.events).is_err() {
            return None;
        }
        let per_event = if info.laned { 8 } else { 4 };
        let chunk_resident =
            usize::try_from(info.chunk_items.iter().copied().max().unwrap_or(0)).ok()? * per_event;
        let depth = match chunk_resident {
            0 => 1,
            per => (stream_bytes / per).saturating_sub(2).max(1),
        };
        let (tx, ring) = sync_channel::<ChunkResult>(depth);
        let section = info.section;
        let chunks = info.chunk_items.len();
        let window = Arc::clone(window);
        let producer = std::thread::spawn(move || {
            for chunk in 0..chunks {
                let item = artifact.read_stream_chunk(section, chunk).map(|(events, lanes)| {
                    let bytes = (events.len() + lanes.len()) * 4;
                    window.add(bytes);
                    StreamChunk {
                        events,
                        lanes,
                        lease: WindowLease { window: Arc::clone(&window), bytes },
                    }
                });
                let fatal = item.is_err();
                if tx.send(item).is_err() || fatal {
                    return;
                }
            }
        });
        Some(StreamCursor {
            info,
            fingerprint,
            ring: Some(ring),
            producer: Some(producer),
            delivered: 0,
        })
    }

    /// Workload fingerprint stamped into the artifact the cursor reads.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// First-level history width the stream was derived at.
    #[must_use]
    pub fn history_bits(&self) -> u32 {
        self.info.history_bits
    }

    /// Whether the stream carries per-address lane indices.
    #[must_use]
    pub fn laned(&self) -> bool {
        self.info.laned
    }

    /// Total events across all chunks.
    #[must_use]
    pub fn events(&self) -> u64 {
        self.info.events
    }

    /// Number of chunks the section was persisted as.
    #[must_use]
    pub fn chunks(&self) -> usize {
        self.info.chunk_items.len()
    }

    /// The next chunk in stream order, blocking on the decode thread if
    /// it hasn't caught up. `None` once every chunk has been delivered;
    /// an `Err` is terminal (the decode thread has stopped).
    pub fn next_chunk(&mut self) -> Option<ChunkResult> {
        if self.delivered == self.info.chunk_items.len() {
            return None;
        }
        let ring = self.ring.as_ref()?;
        let item = match ring.recv() {
            Ok(item) => item,
            // The producer bailed after a fatal error we already
            // delivered; report the stream short rather than hanging.
            Err(_) => Err(ReadTraceError::Truncated { at_event: 0 }),
        };
        self.delivered += 1;
        Some(item)
    }
}

impl Drop for StreamCursor {
    fn drop(&mut self) {
        // Disconnect the ring first so a producer blocked on `send`
        // fails fast instead of deadlocking the join.
        drop(self.ring.take());
        if let Some(producer) = self.producer.take() {
            let _ = producer.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_window_tracks_current_and_peak() {
        let window = StreamWindow::new();
        window.add(100);
        window.add(50);
        assert_eq!(window.current(), 150);
        assert_eq!(window.peak(), 150);
        window.sub(100);
        assert_eq!(window.current(), 50);
        assert_eq!(window.peak(), 150);
        window.reset_peak();
        assert_eq!(window.peak(), 50);
        window.add(25);
        assert_eq!(window.peak(), 75);
    }

    #[test]
    fn chunk_lease_releases_bytes_on_drop() {
        let window = Arc::new(StreamWindow::new());
        window.add(64);
        let chunk = StreamChunk {
            events: vec![0; 16],
            lanes: Vec::new(),
            lease: WindowLease { window: Arc::clone(&window), bytes: 64 },
        };
        assert_eq!(window.current(), 64);
        drop(chunk);
        assert_eq!(window.current(), 0);
        assert_eq!(window.peak(), 64);
    }

    #[test]
    fn stream_bytes_env_parses_disables_and_defaults() {
        // Sole owner of the env var across the test binary, so the
        // set/remove pairs cannot race another test.
        std::env::remove_var(STREAM_BYTES_ENV);
        assert_eq!(stream_bytes_from_env(), None);
        std::env::set_var(STREAM_BYTES_ENV, "");
        assert_eq!(stream_bytes_from_env(), None);
        std::env::set_var(STREAM_BYTES_ENV, "0");
        assert_eq!(stream_bytes_from_env(), None);
        std::env::set_var(STREAM_BYTES_ENV, "8388608");
        assert_eq!(stream_bytes_from_env(), Some(8 << 20));
        std::env::set_var(STREAM_BYTES_ENV, "lots");
        assert_eq!(stream_bytes_from_env(), Some(DEFAULT_STREAM_BYTES));
        std::env::remove_var(STREAM_BYTES_ENV);
    }

    #[test]
    fn cursor_streams_a_persisted_section_in_order() {
        use tlabp_trace::io::write_artifacts_chunked;
        use tlabp_trace::PatternStream;

        let dir = std::env::temp_dir().join(format!("tlabp-stream-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("cursor.tlabp");

        let mut stream = PatternStream::new(6, true);
        for i in 0..40_000u32 {
            stream.push_with_lane((i & 0x3f) as usize, i % 3 == 0, i % 5);
        }
        let key = b"stream-test-key".to_vec();
        // A tiny chunk budget forces multiple chunks even for this
        // small fixture.
        let bytes = write_artifacts_chunked(7, None, None, None, &[(key.clone(), &stream)], 1);
        std::fs::write(&path, &bytes).expect("write artifact");

        let window = Arc::new(StreamWindow::new());
        assert!(StreamCursor::open(&path, b"missing", 1 << 20, &window).is_none());
        let mut cursor = StreamCursor::open(&path, &key, 1 << 20, &window).expect("cursor opens");
        assert_eq!(cursor.history_bits(), 6);
        assert!(cursor.laned());
        assert_eq!(cursor.events(), stream.len() as u64);
        assert!(cursor.chunks() > 1, "fixture should span chunks");

        let mut events = Vec::new();
        let mut lanes = Vec::new();
        while let Some(chunk) = cursor.next_chunk() {
            let chunk = chunk.expect("chunk decodes");
            assert!(window.current() >= chunk.events().len() * 8);
            events.extend_from_slice(chunk.events());
            lanes.extend_from_slice(chunk.lanes());
        }
        assert_eq!(events, stream.events());
        assert_eq!(lanes, stream.lanes());
        drop(cursor);
        assert_eq!(window.current(), 0, "all leases released");
        assert!(window.peak() > 0);

        std::fs::remove_file(&path).ok();
        std::fs::remove_dir(&dir).ok();
    }

    #[test]
    fn cursor_surfaces_chunk_corruption_as_an_error() {
        use tlabp_trace::io::write_artifacts_chunked;
        use tlabp_trace::PatternStream;

        let dir = std::env::temp_dir().join(format!("tlabp-stream-bad-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("corrupt.tlabp");

        let mut stream = PatternStream::new(4, false);
        for i in 0..30_000u32 {
            stream.push((i & 0xf) as usize, i % 7 < 3);
        }
        let key = b"k".to_vec();
        let mut bytes = write_artifacts_chunked(1, None, None, None, &[(key.clone(), &stream)], 1);
        // Flip a bit in the final payload byte: the section head (and
        // so `open`) stays valid, but the last chunk's checksum breaks.
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40;
        std::fs::write(&path, &bytes).expect("write artifact");

        let window = Arc::new(StreamWindow::new());
        let mut cursor = StreamCursor::open(&path, &key, 1 << 20, &window).expect("head is intact");
        let mut saw_error = false;
        while let Some(chunk) = cursor.next_chunk() {
            match chunk {
                Ok(_) => assert!(!saw_error, "no chunks after a terminal error"),
                Err(error) => {
                    assert!(
                        matches!(error, ReadTraceError::SectionChecksum { .. }),
                        "unexpected error: {error:?}"
                    );
                    saw_error = true;
                    break;
                }
            }
        }
        assert!(saw_error, "corruption must surface");
        drop(cursor);
        assert_eq!(window.current(), 0);

        std::fs::remove_file(&path).ok();
        std::fs::remove_dir(&dir).ok();
    }
}
