//! Accuracy aggregation: the geometric means the paper reports.

use tlabp_workloads::BenchmarkKind;

/// Geometric mean of a slice of positive values.
///
/// The paper reports "Tot GMean", "Int GMean" and "FP GMean" — geometric
/// means of per-benchmark prediction accuracies.
///
/// # Panics
///
/// Panics if any value is non-positive.
///
/// # Example
///
/// ```
/// use tlabp_sim::metrics::geometric_mean;
///
/// let g = geometric_mean(&[0.25, 1.0]);
/// assert!((g - 0.5).abs() < 1e-12);
/// assert!(geometric_mean(&[]).is_nan());
/// ```
#[must_use]
pub fn geometric_mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return f64::NAN;
    }
    assert!(values.iter().all(|&v| v > 0.0), "geometric mean requires positive values");
    let log_sum: f64 = values.iter().map(|v| v.ln()).sum();
    (log_sum / values.len() as f64).exp()
}

/// Accuracy of one scheme on one benchmark. `accuracy` is `None` when the
/// benchmark could not be measured (e.g. a profiled scheme on a benchmark
/// with no training data set, like the missing Static Training points in
/// the paper's Figure 11).
#[derive(Debug, Clone, PartialEq)]
pub struct BenchmarkAccuracy {
    /// Benchmark name.
    pub benchmark: String,
    /// Integer or floating point.
    pub kind: BenchmarkCategory,
    /// Prediction accuracy in `[0, 1]`, or `None` if not measurable.
    pub accuracy: Option<f64>,
    /// Context switches simulated during the run.
    pub context_switches: u64,
    /// Dynamic conditional branches predicted.
    pub predictions: u64,
}

/// Serializable mirror of [`BenchmarkKind`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BenchmarkCategory {
    /// Integer benchmark.
    Integer,
    /// Floating-point benchmark.
    FloatingPoint,
}

impl From<BenchmarkKind> for BenchmarkCategory {
    fn from(kind: BenchmarkKind) -> Self {
        match kind {
            BenchmarkKind::Integer => BenchmarkCategory::Integer,
            BenchmarkKind::FloatingPoint => BenchmarkCategory::FloatingPoint,
        }
    }
}

/// Misprediction attribution for a PAg-structured predictor — the
/// paper's concluding "examining that 3 percent" analysis, produced by
/// jobs requesting [`MetricSet::miss_breakdown`].
///
/// Every misprediction lands in exactly one bucket; the engine asserts
/// that the buckets sum to the misprediction count.
///
/// [`MetricSet::miss_breakdown`]: crate::plan::MetricSet
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MissBreakdown {
    /// The branch's history register was not resident: the prediction
    /// came from a fresh all-ones history (cold start / BHT capacity).
    pub bht_miss: u64,
    /// The PHT entry was in a weak state (1 or 2): the pattern was still
    /// training or oscillating.
    pub weak_pattern: u64,
    /// The PHT entry was saturated yet wrong, and its most recent update
    /// came from a *different* static branch: pattern interference — the
    /// component gshare later attacked.
    pub interference: u64,
    /// Saturated yet wrong with the entry last updated by this same
    /// branch: intrinsic data-dependent noise.
    pub noise: u64,
}

impl MissBreakdown {
    /// Total mispredictions across the four buckets.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.bht_miss + self.weak_pattern + self.interference + self.noise
    }

    /// Adds another breakdown bucket-wise (for suite-level totals).
    pub fn accumulate(&mut self, other: &MissBreakdown) {
        self.bht_miss += other.bht_miss;
        self.weak_pattern += other.weak_pattern;
        self.interference += other.interference;
        self.noise += other.noise;
    }
}

/// Fetch-path outcome counts for the Section 3.2 target-caching model,
/// produced by jobs requesting [`MetricSet::fetch`].
///
/// [`MetricSet::fetch`]: crate::plan::MetricSet
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FetchStats {
    /// Branches of every class seen by the fetch engine.
    pub branches: u64,
    /// Fetches that proceeded down the correct path.
    pub correct_path: u64,
    /// Taken branches fetched with the correct cached target in hand
    /// (no pipeline bubble).
    pub no_bubble_taken: u64,
    /// Wrong-path fetches that must be squashed.
    pub squashes: u64,
    /// Squashes caused by a stale cached *return* target — the classic
    /// motivation for return-address stacks.
    pub return_target_misses: u64,
}

/// A scheme's accuracies across the whole benchmark suite, with the
/// paper's three geometric means.
#[derive(Debug, Clone, PartialEq)]
pub struct SuiteResult {
    /// The scheme's configuration string.
    pub scheme: String,
    /// Per-benchmark rows, in [`tlabp_workloads::Benchmark::ALL`] order.
    pub rows: Vec<BenchmarkAccuracy>,
}

impl SuiteResult {
    fn accuracies(&self, filter: Option<BenchmarkCategory>) -> Vec<f64> {
        self.rows
            .iter()
            .filter(|r| filter.is_none_or(|k| r.kind == k))
            .filter_map(|r| r.accuracy)
            .collect()
    }

    /// "Tot GMean": geometric mean over all measured benchmarks.
    #[must_use]
    pub fn total_gmean(&self) -> f64 {
        geometric_mean(&self.accuracies(None))
    }

    /// "Int GMean": geometric mean over the integer benchmarks.
    #[must_use]
    pub fn int_gmean(&self) -> f64 {
        geometric_mean(&self.accuracies(Some(BenchmarkCategory::Integer)))
    }

    /// "FP GMean": geometric mean over the floating-point benchmarks.
    #[must_use]
    pub fn fp_gmean(&self) -> f64 {
        geometric_mean(&self.accuracies(Some(BenchmarkCategory::FloatingPoint)))
    }

    /// The accuracy measured for `benchmark`, if present.
    #[must_use]
    pub fn accuracy_of(&self, benchmark: &str) -> Option<f64> {
        self.rows.iter().find(|r| r.benchmark == benchmark).and_then(|r| r.accuracy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(name: &str, kind: BenchmarkCategory, accuracy: Option<f64>) -> BenchmarkAccuracy {
        BenchmarkAccuracy {
            benchmark: name.to_owned(),
            kind,
            accuracy,
            context_switches: 0,
            predictions: 1000,
        }
    }

    #[test]
    fn gmean_basics() {
        assert!((geometric_mean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert!((geometric_mean(&[0.9]) - 0.9).abs() < 1e-12);
    }

    #[test]
    fn gmean_of_empty_slice_is_nan() {
        // Pinned: empty input yields NaN (not a panic, not 0) so callers
        // like `format_accuracy` can render missing means uniformly.
        assert!(geometric_mean(&[]).is_nan());
    }

    #[test]
    fn gmean_of_single_element_is_identity() {
        for v in [1e-9, 0.5, 1.0, 123.456] {
            let g = geometric_mean(&[v]);
            assert!((g - v).abs() < 1e-12 * v.max(1.0), "gmean([{v}]) = {g}");
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn gmean_rejects_zero() {
        let _ = geometric_mean(&[0.0, 1.0]);
    }

    #[test]
    fn suite_means_split_by_kind() {
        let suite = SuiteResult {
            scheme: "test".to_owned(),
            rows: vec![
                row("int_a", BenchmarkCategory::Integer, Some(0.9)),
                row("int_b", BenchmarkCategory::Integer, Some(0.9)),
                row("fp_a", BenchmarkCategory::FloatingPoint, Some(0.99)),
            ],
        };
        assert!((suite.int_gmean() - 0.9).abs() < 1e-9);
        assert!((suite.fp_gmean() - 0.99).abs() < 1e-9);
        let total = geometric_mean(&[0.9, 0.9, 0.99]);
        assert!((suite.total_gmean() - total).abs() < 1e-12);
    }

    #[test]
    fn unmeasured_rows_are_excluded() {
        let suite = SuiteResult {
            scheme: "test".to_owned(),
            rows: vec![
                row("a", BenchmarkCategory::Integer, Some(0.8)),
                row("b", BenchmarkCategory::Integer, None),
            ],
        };
        assert!((suite.total_gmean() - 0.8).abs() < 1e-12);
        assert_eq!(suite.accuracy_of("b"), None);
        assert_eq!(suite.accuracy_of("a"), Some(0.8));
        assert_eq!(suite.accuracy_of("missing"), None);
    }
}
