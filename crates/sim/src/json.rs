//! A minimal JSON value, writer and parser for the wire formats.
//!
//! The serialized [`Plan`](crate::plan::Plan) and
//! [`ResultSet`](crate::engine::ResultSet) formats, and the sweep
//! service's frame payloads, are JSON — but the build must work with no
//! external crates, so this module implements the (small) subset the
//! wire formats need on std alone:
//!
//! * values: `null`, booleans, **unsigned integers**, strings, arrays,
//!   objects. Every numeric field of a plan or a result is a count
//!   (`u64`) or a small geometry parameter, so signed numbers, fractions
//!   and exponents are rejected on parse rather than half-supported —
//!   keeping the format free of float round-trip hazards by
//!   construction.
//! * writer: compact (no whitespace), object keys in insertion order, so
//!   rendering is deterministic and renders of equal values are
//!   byte-identical — the property the service's memo cache and the CI
//!   bit-identity diffs rely on.
//! * parser: recursive descent over the full grammar of the writer plus
//!   arbitrary inter-token whitespace (hand-edited plan files), with
//!   byte-offset error positions.

use std::error::Error;
use std::fmt;

/// A JSON value restricted to the wire formats' needs (see module docs).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer (the only number form the formats use).
    UInt(u64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object; keys keep insertion order so rendering is
    /// deterministic.
    Object(Vec<(String, Json)>),
}

/// Error produced when JSON parsing or schema decoding fails.
///
/// One error type covers both layers: syntax errors carry the byte
/// offset they were detected at, schema errors (a well-formed value that
/// does not describe a plan or a result) carry only a message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    message: String,
}

impl WireError {
    /// A schema- or syntax-level error with this message.
    #[must_use]
    pub fn new(message: impl Into<String>) -> Self {
        WireError { message: message.into() }
    }

    fn at(offset: usize, message: impl fmt::Display) -> Self {
        WireError { message: format!("{message} at byte {offset}") }
    }
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl Error for WireError {}

impl Json {
    /// An object from `(key, value)` pairs, preserving order.
    #[must_use]
    pub fn object(fields: Vec<(&str, Json)>) -> Json {
        Json::Object(fields.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
    }

    /// Renders the value compactly (no whitespace, insertion-ordered
    /// keys). Deterministic: equal values render byte-identically.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::UInt(n) => out.push_str(&n.to_string()),
            Json::Str(s) => write_string(s, out),
            Json::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Object(fields) => {
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(key, out);
                    out.push(':');
                    value.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses a complete JSON document (one value, then end of input).
    pub fn parse(text: &str) -> Result<Json, WireError> {
        let mut parser = Parser { bytes: text.as_bytes(), pos: 0 };
        parser.skip_ws();
        let value = parser.value()?;
        parser.skip_ws();
        if parser.pos != parser.bytes.len() {
            return Err(WireError::at(parser.pos, "trailing input after JSON value"));
        }
        Ok(value)
    }

    /// The string value, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer value, if this is an unsigned integer.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::UInt(n) => Some(*n),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The items, if this is an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The fields, if this is an object.
    #[must_use]
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// Whether this is `null`.
    #[must_use]
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }

    /// Object field lookup (first occurrence).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        self.as_object()?.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Object field lookup that fails with a schema error naming the
    /// missing key — the decoder's workhorse.
    pub fn field(&self, key: &str) -> Result<&Json, WireError> {
        self.get(key).ok_or_else(|| WireError::new(format!("missing field {key:?}")))
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), WireError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(WireError::at(self.pos, format!("expected {:?}", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, WireError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(WireError::at(self.pos, format!("expected {word:?}")))
        }
    }

    fn value(&mut self) -> Result<Json, WireError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'0'..=b'9') => self.number(),
            Some(b'-') => Err(WireError::at(
                self.pos,
                "negative numbers are not part of the wire format (counts are unsigned)",
            )),
            Some(other) => Err(WireError::at(self.pos, format!("unexpected byte {other:#04x}"))),
            None => Err(WireError::at(self.pos, "unexpected end of input")),
        }
    }

    fn number(&mut self) -> Result<Json, WireError> {
        let start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if matches!(self.peek(), Some(b'.' | b'e' | b'E')) {
            return Err(WireError::at(
                self.pos,
                "fractions and exponents are not part of the wire format",
            ));
        }
        let digits = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII digits");
        if digits.len() > 1 && digits.starts_with('0') {
            return Err(WireError::at(start, "leading zeros are not allowed"));
        }
        digits
            .parse::<u64>()
            .map(Json::UInt)
            .map_err(|_| WireError::at(start, "integer does not fit in u64"))
    }

    fn string(&mut self) -> Result<String, WireError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(WireError::at(self.pos, "unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| WireError::at(self.pos, "malformed \\u escape"))?;
                            let c = char::from_u32(hex).ok_or_else(|| {
                                WireError::at(self.pos, "surrogate \\u escapes are not supported")
                            })?;
                            out.push(c);
                            self.pos += 4;
                        }
                        _ => return Err(WireError::at(self.pos, "unknown escape")),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => {
                    return Err(WireError::at(self.pos, "raw control byte in string"));
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is &str, so
                    // boundaries are valid by construction).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| WireError::at(self.pos, "invalid UTF-8"))?;
                    let c = rest.chars().next().expect("peek saw a byte");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, WireError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(WireError::at(self.pos, "expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, WireError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(fields));
                }
                _ => return Err(WireError::at(self.pos, "expected ',' or '}'")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(value: &Json) {
        let text = value.render();
        let back = Json::parse(&text).expect("render parses");
        assert_eq!(&back, value, "round trip through {text:?}");
        assert_eq!(back.render(), text, "second render is byte-identical");
    }

    #[test]
    fn scalars_round_trip() {
        for value in [
            Json::Null,
            Json::Bool(true),
            Json::Bool(false),
            Json::UInt(0),
            Json::UInt(7),
            Json::UInt(u64::MAX),
            Json::Str(String::new()),
            Json::Str("PAg(12)".into()),
            Json::Str("tab\tquote\"slash\\newline\n".into()),
            Json::Str("unicode: é λ".into()),
        ] {
            round_trip(&value);
        }
    }

    #[test]
    fn composites_round_trip() {
        let value = Json::object(vec![
            ("jobs", Json::Array(vec![Json::UInt(1), Json::Null, Json::Bool(false)])),
            ("name", Json::Str("needs a training trace".into())),
            ("empty_array", Json::Array(Vec::new())),
            ("empty_object", Json::Object(Vec::new())),
            ("nested", Json::object(vec![("entries", Json::UInt(512)), ("ways", Json::UInt(4))])),
        ]);
        round_trip(&value);
    }

    #[test]
    fn parser_accepts_whitespace_everywhere() {
        let text = " {\n  \"a\" : [ 1 , 2 ] ,\t\"b\" : { } }\r\n";
        let value = Json::parse(text).expect("whitespaced document parses");
        assert_eq!(value.get("a").and_then(Json::as_array).map(<[Json]>::len), Some(2));
    }

    #[test]
    fn parser_rejects_non_wire_numbers() {
        for bad in ["-1", "1.5", "1e3", "01", "18446744073709551616"] {
            assert!(Json::parse(bad).is_err(), "{bad:?} must be rejected");
        }
    }

    #[test]
    fn parser_rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "{\"a\":}",
            "\"unterminated",
            "nul",
            "truex",
            "1 2",
            "{\"a\":1,}",
            "[1,]",
            "\"bad \\q escape\"",
            "\"\\ud800\"",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} must be rejected");
        }
    }

    #[test]
    fn field_lookup_reports_missing_keys() {
        let value = Json::object(vec![("present", Json::UInt(1))]);
        assert_eq!(value.field("present").unwrap().as_u64(), Some(1));
        let err = value.field("absent").unwrap_err();
        assert!(err.to_string().contains("absent"));
    }
}
