//! One benchmark per paper table/figure: each measures the simulation
//! kernel that regenerates the corresponding artifact, at reduced trace
//! length (the full-scale regenerations are `cargo run -p
//! tlabp-experiments -- <artifact>`).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use tlabp_core::automaton::Automaton;
use tlabp_core::bht::BhtConfig;
use tlabp_core::config::SchemeConfig;
use tlabp_core::schemes::{train_global, train_per_address, Gsg, Psg};
use tlabp_core::predictor::BranchPredictor;
use tlabp_sim::runner::{simulate, SimConfig};
use tlabp_trace::stats::{BranchMix, TraceSummary};
use tlabp_trace::Trace;
use tlabp_workloads::{Benchmark, DataSet};

fn accuracy(predictor: &mut dyn BranchPredictor, trace: &Trace, sim: &SimConfig) -> f64 {
    simulate(predictor, trace, sim).accuracy()
}

/// Shared scaled-down workload trace (one integer benchmark).
fn workload() -> Trace {
    Benchmark::by_name("eqntott").expect("eqntott exists").trace(DataSet::Testing)
}

fn table1_static_branches(c: &mut Criterion) {
    // Table 1 kernel: trace generation + static-branch counting for one
    // benchmark (the full table sweeps all nine).
    let benchmark = Benchmark::by_name("li").expect("li exists");
    c.bench_function("table1_static_branches", |b| {
        b.iter(|| {
            let trace = benchmark.trace(DataSet::Testing);
            black_box(TraceSummary::from_trace(&trace).static_conditional_branches)
        });
    });
}

fn fig04_branch_mix(c: &mut Criterion) {
    let trace = workload();
    c.bench_function("fig04_branch_mix", |b| {
        b.iter(|| black_box(BranchMix::from_trace(black_box(&trace))));
    });
}

fn fig05_automata(c: &mut Criterion) {
    let trace = workload();
    let sim = SimConfig::no_context_switch();
    let mut group = c.benchmark_group("fig05_automata");
    for automaton in Automaton::FIGURE5 {
        group.bench_function(automaton.table3_name(), |b| {
            b.iter(|| {
                let mut p = tlabp_core::schemes::Pag::new(12, BhtConfig::PAPER_DEFAULT, automaton);
                black_box(accuracy(&mut p, &trace, &sim))
            });
        });
    }
    group.finish();
}

fn fig06_variations(c: &mut Criterion) {
    let trace = workload();
    let sim = SimConfig::no_context_switch();
    let mut group = c.benchmark_group("fig06_variations");
    for (name, config) in [
        ("GAg_k8", SchemeConfig::gag(8)),
        ("PAg_k8", SchemeConfig::pag(8)),
        ("PAp_k8", SchemeConfig::pap(8)),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut p = config.build().expect("adaptive scheme");
                black_box(accuracy(&mut *p, &trace, &sim))
            });
        });
    }
    group.finish();
}

fn fig07_ghr_length(c: &mut Criterion) {
    let trace = workload();
    let sim = SimConfig::no_context_switch();
    let mut group = c.benchmark_group("fig07_ghr_length");
    for k in [6u32, 12, 18] {
        group.bench_function(format!("GAg_k{k}"), |b| {
            b.iter(|| {
                let mut p = SchemeConfig::gag(k).build().expect("GAg builds");
                black_box(accuracy(&mut *p, &trace, &sim))
            });
        });
    }
    group.finish();
}

fn fig08_equal_accuracy(c: &mut Criterion) {
    let trace = workload();
    let sim = SimConfig::no_context_switch();
    let model = tlabp_core::CostModel::paper_default();
    let configs = [SchemeConfig::gag(18), SchemeConfig::pag(12), SchemeConfig::pap(8)];
    c.bench_function("fig08_equal_accuracy", |b| {
        b.iter(|| {
            let mut total = 0.0;
            for config in &configs {
                let mut p = config.build().expect("adaptive scheme");
                total += accuracy(&mut *p, &trace, &sim);
                total += config.cost(&model).expect("costed scheme") * 1e-12;
            }
            black_box(total)
        });
    });
}

fn fig09_context_switch(c: &mut Criterion) {
    let trace = Benchmark::by_name("gcc").expect("gcc exists").trace(DataSet::Testing);
    let mut group = c.benchmark_group("fig09_context_switch");
    group.sample_size(10);
    for (name, sim) in [
        ("no_cs", SimConfig::no_context_switch()),
        ("with_cs", SimConfig::paper_context_switch()),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut p = SchemeConfig::pag(12).build().expect("PAg builds");
                black_box(accuracy(&mut *p, &trace, &sim))
            });
        });
    }
    group.finish();
}

fn fig10_bht_impl(c: &mut Criterion) {
    let trace = workload();
    let sim = SimConfig::paper_context_switch();
    let mut group = c.benchmark_group("fig10_bht_impl");
    for bht in BhtConfig::FIGURE10 {
        group.bench_function(bht.label(), |b| {
            b.iter(|| {
                let mut p = SchemeConfig::pag(12).with_bht(bht).build().expect("PAg builds");
                black_box(accuracy(&mut *p, &trace, &sim))
            });
        });
    }
    group.finish();
}

fn fig11_schemes(c: &mut Criterion) {
    let benchmark = Benchmark::by_name("espresso").expect("espresso exists");
    let training = benchmark.trace(DataSet::Training);
    let testing = benchmark.trace(DataSet::Testing);
    let sim = SimConfig::no_context_switch();
    let mut group = c.benchmark_group("fig11_schemes");
    group.sample_size(10);
    group.bench_function("PAg12", |b| {
        b.iter(|| {
            let mut p = SchemeConfig::pag(12).build().expect("builds");
            black_box(accuracy(&mut *p, &testing, &sim))
        });
    });
    group.bench_function("PSg12_with_training_pass", |b| {
        b.iter(|| {
            let preset = train_per_address(&training, 12);
            let mut p = Psg::new(&preset, BhtConfig::PAPER_DEFAULT);
            black_box(accuracy(&mut p, &testing, &sim))
        });
    });
    group.bench_function("GSg12_with_training_pass", |b| {
        b.iter(|| {
            let preset = train_global(&training, 12);
            let mut p = Gsg::new(&preset);
            black_box(accuracy(&mut p, &testing, &sim))
        });
    });
    group.bench_function("BTB_A2", |b| {
        b.iter(|| {
            let mut p = SchemeConfig::btb(Automaton::A2).build().expect("builds");
            black_box(accuracy(&mut *p, &testing, &sim))
        });
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(15)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = table1_static_branches, fig04_branch_mix, fig05_automata,
        fig06_variations, fig07_ghr_length, fig08_equal_accuracy,
        fig09_context_switch, fig10_bht_impl, fig11_schemes
}
criterion_main!(benches);
