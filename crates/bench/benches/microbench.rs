//! Microbenchmarks of the individual predictor structures.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use tlabp_core::automaton::Automaton;
use tlabp_core::bht::{CacheBht, IdealBht};
use tlabp_core::history::HistoryRegister;
use tlabp_core::pht::PatternHistoryTable;
use tlabp_trace::io::{read_trace, write_trace};

fn automaton_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("automaton");
    for automaton in Automaton::FIGURE5 {
        group.bench_function(automaton.table3_name(), |b| {
            let mut state = automaton.initial_state();
            let mut flip = false;
            b.iter(|| {
                flip = !flip;
                state = automaton.update(black_box(state), flip);
                black_box(automaton.predict(state))
            });
        });
    }
    group.finish();
}

fn history_register_ops(c: &mut Criterion) {
    c.bench_function("history/shift_in", |b| {
        let mut hr = HistoryRegister::all_ones(12);
        let mut flip = false;
        b.iter(|| {
            flip = !flip;
            hr.shift_in(flip);
            black_box(hr.pattern())
        });
    });
}

fn pht_ops(c: &mut Criterion) {
    c.bench_function("pht/predict_update_k12", |b| {
        let mut pht = PatternHistoryTable::new(12, Automaton::A2);
        let mut pattern = 0usize;
        b.iter(|| {
            pattern = (pattern.wrapping_mul(25) + 7) & 0xfff;
            let predicted = pht.predict(black_box(pattern));
            pht.update(pattern, predicted);
            black_box(predicted)
        });
    });
}

fn bht_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("bht");
    group.bench_function("cache_512x4/hit", |b| {
        let mut bht = CacheBht::new(512, 4, 12);
        bht.access(0x4000);
        b.iter(|| black_box(bht.access(black_box(0x4000))));
    });
    group.bench_function("cache_512x4/working_set_sweep", |b| {
        let mut bht = CacheBht::new(512, 4, 12);
        let mut pc = 0x4000u64;
        b.iter(|| {
            pc = 0x4000 + ((pc + 4) & 0x3ff);
            let hit = bht.access(pc);
            bht.record_outcome(pc, true);
            black_box(hit)
        });
    });
    group.bench_function("ideal/access", |b| {
        let mut bht = IdealBht::new(12);
        let mut pc = 0u64;
        b.iter(|| {
            pc = (pc + 4) & 0xffff;
            black_box(bht.access(pc))
        });
    });
    group.finish();
}

fn trace_io(c: &mut Criterion) {
    let trace = tlabp_bench::mixed_trace(50_000);
    let bytes = write_trace(&trace);
    let mut group = c.benchmark_group("trace_io");
    group.throughput(criterion::Throughput::Elements(trace.len() as u64));
    group.bench_function("encode_50k", |b| {
        b.iter(|| black_box(write_trace(black_box(&trace))));
    });
    group.bench_function("decode_50k", |b| {
        b.iter_batched(
            || bytes.clone(),
            |bytes| black_box(read_trace(&bytes).expect("valid trace")),
            BatchSize::SmallInput,
        );
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(30)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = automaton_ops, history_register_ops, pht_ops, bht_ops, trace_io
}
criterion_main!(benches);
