//! End-to-end predict+update throughput for every prediction scheme.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use tlabp_core::automaton::Automaton;
use tlabp_core::config::SchemeConfig;
use tlabp_trace::Trace;

fn run(config: &SchemeConfig, trace: &Trace) -> u64 {
    let mut predictor = config.build().expect("non-training scheme");
    let mut correct = 0u64;
    for branch in trace.conditional_branches() {
        let predicted = predictor.predict(branch);
        predictor.update(branch);
        correct += u64::from(predicted == branch.taken);
    }
    correct
}

fn predictor_throughput(c: &mut Criterion) {
    let trace = tlabp_bench::mixed_trace(60_000);
    let branches = trace.conditional_branches().count() as u64;

    let configs = [
        SchemeConfig::gag(12),
        SchemeConfig::pag(12),
        SchemeConfig::pap(8),
        SchemeConfig::pag(12).with_bht(tlabp_core::BhtConfig::Ideal),
        SchemeConfig::btb(Automaton::A2),
        SchemeConfig::btfn(),
        SchemeConfig::always_taken(),
    ];

    let mut group = c.benchmark_group("predictor_throughput");
    group.throughput(Throughput::Elements(branches));
    for config in configs {
        group.bench_function(config.to_string(), |b| {
            b.iter(|| black_box(run(black_box(&config), &trace)));
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = predictor_throughput
}
criterion_main!(benches);
