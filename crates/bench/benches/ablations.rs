//! Design-choice ablation benchmarks called out in DESIGN.md §4:
//! speculative-history policies (Section 3.1), the target cache
//! (Section 3.2), and cost-model evaluation (Section 3.4).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use tlabp_core::automaton::Automaton;
use tlabp_core::cost::{BhtGeometry, CostModel};
use tlabp_core::predictor::BranchPredictor;
use tlabp_core::speculative::{HistoryUpdatePolicy, MispredictRepair, SpeculativeGag};
use tlabp_core::target_cache::TargetCache;

fn speculative_policies(c: &mut Criterion) {
    let trace = tlabp_bench::mixed_trace(40_000);
    let policies = [
        ("resolve_d0", HistoryUpdatePolicy::OnResolve { delay: 0 }),
        ("resolve_d4", HistoryUpdatePolicy::OnResolve { delay: 4 }),
        (
            "spec_repair_d4",
            HistoryUpdatePolicy::Speculative { delay: 4, repair: MispredictRepair::Repair },
        ),
        (
            "spec_reinit_d4",
            HistoryUpdatePolicy::Speculative {
                delay: 4,
                repair: MispredictRepair::Reinitialize,
            },
        ),
    ];
    let mut group = c.benchmark_group("ablation_speculative");
    for (name, policy) in policies {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut p = SpeculativeGag::new(12, Automaton::A2, policy);
                let mut correct = 0u64;
                for branch in trace.conditional_branches() {
                    let predicted = p.predict(branch);
                    p.update(branch);
                    correct += u64::from(predicted == branch.taken);
                }
                black_box(correct)
            });
        });
    }
    group.finish();
}

fn target_cache(c: &mut Criterion) {
    let trace = tlabp_bench::mixed_trace(40_000);
    c.bench_function("ablation_target_cache", |b| {
        b.iter(|| {
            let mut cache = TargetCache::new(512, 4);
            let mut correct_paths = 0u64;
            for branch in trace.branches() {
                let outcome = cache.fetch(branch, branch.taken);
                cache.resolve(branch);
                correct_paths += u64::from(outcome.is_correct_path());
            }
            black_box(correct_paths)
        });
    });
}

fn cost_model(c: &mut Criterion) {
    let model = CostModel::paper_default();
    c.bench_function("cost_model", |b| {
        b.iter(|| {
            let mut total = 0.0;
            for k in 6..=18 {
                total += model.gag_cost(k, 2);
                total += model.pag_cost(BhtGeometry::PAPER_DEFAULT, k, 2);
                total += model.pap_cost(BhtGeometry::PAPER_DEFAULT, k, 2);
                total += model.full_cost(BhtGeometry::PAPER_DEFAULT, k, 2, 1);
            }
            black_box(total)
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = speculative_policies, target_cache, cost_model
}
criterion_main!(benches);
