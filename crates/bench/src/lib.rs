//! Criterion benchmark crate for the two-level adaptive branch prediction
//! reproduction.
//!
//! All content lives in `benches/`:
//!
//! * `microbench` — individual structure operations (automata, history
//!   registers, pattern/branch history tables, trace IO).
//! * `predictors` — end-to-end predict+update throughput per scheme.
//! * `figures` — one benchmark per paper table/figure kernel, at reduced
//!   trace lengths (the full regenerations live in `tlabp-experiments`).
//! * `ablations` — the design-choice ablations called out in DESIGN.md
//!   (speculative history policies, cost-model evaluation).
//!
//! This library target exists only to anchor the package; it also hosts
//! shared helpers for the benches.

/// Builds a mixed synthetic trace with `branches` dynamic conditional
/// branches: one part loop-regular, one part pattern-driven, one part
/// biased noise — a cheap stand-in for a workload mix.
pub fn mixed_trace(branches: usize) -> tlabp_trace::Trace {
    use tlabp_trace::synth::{BiasedCoins, LoopNest, RepeatingPattern};
    let third = branches / 3;
    let mut trace = LoopNest::new(&[(third / 10).max(1) as u64, 10]).generate();
    trace.append_shifted(&RepeatingPattern::new(&[true, true, false, true], third / 4 + 1).generate());
    trace.append_shifted(&BiasedCoins::uniform(64, 0.85, third / 64 + 1, 7).generate());
    trace
}
