//! # tlabp — Two-Level Adaptive Branch Prediction
//!
//! A from-scratch Rust reproduction of Yeh & Patt, *Alternative
//! Implementations of Two-Level Adaptive Branch Prediction*: the GAg, PAg
//! and PAp predictor variations, every comparison scheme the paper
//! simulates, the hardware cost model, the trace-driven simulation
//! methodology, a mini-RISC trace-generation substrate, and nine
//! SPEC'89-like workloads.
//!
//! This facade crate re-exports the member crates:
//!
//! * [`core`] (`tlabp-core`) — predictors, automata, history registers,
//!   branch/pattern history tables, the Table 3 configuration notation and
//!   the Section 3.4 cost model.
//! * [`trace`] (`tlabp-trace`) — trace records, binary trace IO, synthetic
//!   generators and branch-mix statistics.
//! * [`isa`] (`tlabp-isa`) — the mini-RISC ISA, assembler and
//!   trace-emitting VM standing in for the paper's Motorola 88100
//!   simulator.
//! * [`workloads`] (`tlabp-workloads`) — the nine SPEC'89-like benchmarks
//!   with training and testing data sets.
//! * [`sim`] (`tlabp-sim`) — the trace-driven simulation runner, context
//!   switch model, suite orchestration and reporting.
//! * [`service`] (`tlabp-service`) — the sweep-as-a-service daemon:
//!   serialized plans over a line-delimited checksummed wire protocol,
//!   streamed results, memoized responses.
//!
//! # Quick start
//!
//! ```
//! use tlabp::core::config::SchemeConfig;
//! use tlabp::sim::runner::{simulate, SimConfig};
//! use tlabp::workloads::{Benchmark, DataSet};
//!
//! // Build the paper's most cost-effective predictor: PAg with 12-bit
//! // history registers in a 4-way 512-entry branch history table.
//! let mut predictor = SchemeConfig::pag(12).build()?;
//!
//! // Run it over the eqntott-like workload.
//! let trace = Benchmark::by_name("eqntott").unwrap().trace(DataSet::Testing);
//! let result = simulate(&mut *predictor, &trace, &SimConfig::default());
//! println!("accuracy: {:.2}%", 100.0 * result.accuracy());
//! assert!(result.accuracy() > 0.85);
//! # Ok::<(), tlabp::core::config::BuildError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use tlabp_core as core;
pub use tlabp_isa as isa;
pub use tlabp_service as service;
pub use tlabp_sim as sim;
pub use tlabp_trace as trace;
pub use tlabp_workloads as workloads;
