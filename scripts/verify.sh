#!/usr/bin/env sh
# Full offline verification: release build, test suite, strict clippy
# across the whole workspace, formatting, the differential/determinism
# suites under release optimization (the fast paths the benchmarks
# exercise) — repeated with each replay kernel body forced, proving
# TLABP_SIMD is a throughput knob only — and one-iteration smoke runs
# of the throughput harness (full, then the replay section alone under
# the portable SWAR body).
# Run from the repository root. Requires no network access.
set -eux

cargo build --release --workspace
cargo test -q --workspace
cargo clippy --workspace --all-targets -- -D warnings
cargo fmt --all --check
cargo test --release -q -p tlabp --test differential --test sweep_determinism --test disk_cache
TLABP_SIMD=swar cargo test --release -q -p tlabp --test differential --test sweep_determinism
TLABP_SIMD=scalar cargo test --release -q -p tlabp --test differential --test sweep_determinism
TLABP_BENCH_ITERS=1 cargo run -q -p tlabp-experiments --release -- bench --out "$(mktemp -d)"
TLABP_BENCH_ITERS=1 TLABP_SIMD=swar cargo run -q -p tlabp-experiments --release -- bench --section replay --out "$(mktemp -d)"
