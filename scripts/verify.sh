#!/usr/bin/env sh
# Full offline verification: release build, test suite, strict clippy
# across the whole workspace, formatting, the differential/determinism
# suites under release optimization (the fast paths the benchmarks
# exercise) — repeated with each replay kernel body forced, proving
# TLABP_SIMD is a throughput knob only (the avx512 pass runs on any
# host: without AVX-512 the forced tier falls back to SWAR, so it
# degrades to a second SWAR pass rather than failing) — plus a
# forced-split pass proving TLABP_SPLIT is a scheduling knob only —
# and one-iteration smoke runs of the throughput harness (full, then
# the replay section alone under the portable SWAR body, then the
# scaling section alone), and the sweep-service smoke test: a daemon is
# started, two concurrent clients stream the fig5 plan, and both
# streamed result sets must be byte-identical to an in-process
# `experiments exec` of the same plan file.
# Run from the repository root. Requires no network access (the service
# smoke test talks only to 127.0.0.1).
set -eux

cargo build --release --workspace
cargo test -q --workspace
cargo clippy --workspace --all-targets -- -D warnings
cargo fmt --all --check
cargo test --release -q -p tlabp --test differential --test sweep_determinism --test disk_cache
TLABP_SIMD=swar cargo test --release -q -p tlabp --test differential --test sweep_determinism
TLABP_SIMD=scalar cargo test --release -q -p tlabp --test differential --test sweep_determinism
TLABP_SIMD=avx512 cargo test --release -q -p tlabp --test differential --test sweep_determinism
TLABP_SPLIT=3 cargo test --release -q -p tlabp --test differential --test sweep_determinism
TLABP_BENCH_ITERS=1 cargo run -q -p tlabp-experiments --release -- bench --out "$(mktemp -d)"
TLABP_BENCH_ITERS=1 TLABP_SIMD=swar cargo run -q -p tlabp-experiments --release -- bench --section replay --out "$(mktemp -d)"
TLABP_BENCH_ITERS=1 cargo run -q -p tlabp-experiments --release -- bench --section scaling --out "$(mktemp -d)"

# Sweep-service smoke test. Serialize the fig5 plan, run it in-process
# for the reference results, then stream it through a live daemon from
# two concurrent clients plus one warm (memoized) client, and require
# every response byte-identical to the in-process run.
SMOKE_DIR="$(mktemp -d)"
export TLABP_SERVE_ADDR=127.0.0.1:17391
cargo run -q -p tlabp-experiments --release -- plan fig5 --out "$SMOKE_DIR"
cargo run -q -p tlabp-experiments --release -- exec "$SMOKE_DIR/fig5.plan.json" --out "$SMOKE_DIR/exec"
cargo run -q -p tlabp-experiments --release -- serve &
SERVE_PID=$!
trap 'kill "$SERVE_PID" 2>/dev/null || true' EXIT
cargo run -q -p tlabp-experiments --release -- client "$SMOKE_DIR/fig5.plan.json" --out "$SMOKE_DIR/client-a" &
CLIENT_A=$!
cargo run -q -p tlabp-experiments --release -- client "$SMOKE_DIR/fig5.plan.json" --out "$SMOKE_DIR/client-b" &
CLIENT_B=$!
wait "$CLIENT_A"
wait "$CLIENT_B"
# A third client hits the daemon's memo cache; the replayed bytes must
# still match.
cargo run -q -p tlabp-experiments --release -- client "$SMOKE_DIR/fig5.plan.json" --out "$SMOKE_DIR/client-memo"
cmp "$SMOKE_DIR/exec/fig5.results.json" "$SMOKE_DIR/client-a/fig5.results.json"
cmp "$SMOKE_DIR/exec/fig5.results.json" "$SMOKE_DIR/client-b/fig5.results.json"
cmp "$SMOKE_DIR/exec/fig5.results.json" "$SMOKE_DIR/client-memo/fig5.results.json"
kill "$SERVE_PID"
trap - EXIT
