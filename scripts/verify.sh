#!/usr/bin/env sh
# Full offline verification: release build, test suite, strict clippy.
# Run from the repository root. Requires no network access.
set -eux

cargo build --release --workspace
cargo test -q --workspace
cargo clippy --all-targets -- -D warnings
