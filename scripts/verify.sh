#!/usr/bin/env sh
# Full offline verification: release build, test suite, strict clippy
# across the whole workspace, and formatting.
# Run from the repository root. Requires no network access.
set -eux

cargo build --release --workspace
cargo test -q --workspace
cargo clippy --workspace --all-targets -- -D warnings
cargo fmt --all --check
