#!/usr/bin/env sh
# Full offline verification: release build, test suite, strict clippy
# across the whole workspace, formatting, the differential/determinism
# suites under release optimization (the fast paths the benchmarks
# exercise) — repeated with each replay kernel body forced, proving
# TLABP_SIMD is a throughput knob only (the avx512 pass runs on any
# host: without AVX-512 the forced tier falls back to SWAR, so it
# degrades to a second SWAR pass rather than failing) — plus a
# forced-split pass proving TLABP_SPLIT is a scheduling knob only —
# plus a capped-window streaming pass proving TLABP_STREAM_BYTES is a
# memory knob only — and one-iteration smoke runs of the throughput
# harness (full, then the replay section alone under the portable SWAR
# body, then the scaling, service and stream sections alone), an
# end-to-end TLBE import of the built-in demo capture, and the
# sweep-service smoke test: a daemon is started with a persistent memo
# tier, a concurrent burst of clients streams the fig5 plan, every
# result set must be byte-identical to an in-process `experiments exec`
# of the same plan file, and after killing and restarting the daemon a
# further client must be answered from the persistent memo tier
# (proven by the client's "memoized" report — zero simulation work) and
# still byte-identically.
# Run from the repository root. Requires no network access (the service
# smoke test talks only to 127.0.0.1).
set -eux

cargo build --release --workspace
cargo test -q --workspace
cargo clippy --workspace --all-targets -- -D warnings
cargo fmt --all --check
cargo test --release -q -p tlabp --test differential --test sweep_determinism --test disk_cache --test streaming
TLABP_SIMD=swar cargo test --release -q -p tlabp --test differential --test sweep_determinism --test streaming
TLABP_SIMD=scalar cargo test --release -q -p tlabp --test differential --test sweep_determinism --test streaming
TLABP_SIMD=avx512 cargo test --release -q -p tlabp --test differential --test sweep_determinism
TLABP_SPLIT=3 cargo test --release -q -p tlabp --test differential --test sweep_determinism
# The engine's streaming tier forced on with a small window: every
# replay batch that finds a persisted v3 stream must walk it chunked
# (and bit-identically), everything else falls back to hydration.
TLABP_STREAM_BYTES=4194304 TLABP_TRACE_DIR="$(mktemp -d)" cargo test --release -q -p tlabp --test differential --test disk_cache --test streaming
TLABP_BENCH_ITERS=1 cargo run -q -p tlabp-experiments --release -- bench --out "$(mktemp -d)"
TLABP_BENCH_ITERS=1 TLABP_SIMD=swar cargo run -q -p tlabp-experiments --release -- bench --section replay --out "$(mktemp -d)"
TLABP_BENCH_ITERS=1 cargo run -q -p tlabp-experiments --release -- bench --section scaling --out "$(mktemp -d)"
TLABP_BENCH_ITERS=1 cargo run -q -p tlabp-experiments --release -- bench --section service --out "$(mktemp -d)"
TLABP_BENCH_ITERS=1 cargo run -q -p tlabp-experiments --release -- bench --section stream --out "$(mktemp -d)"
# External trace ingestion: the built-in demo capture must import,
# persist as a fingerprint-named v3 artifact and pass its replay smoke
# check end-to-end.
TLABP_TRACE_DIR="$(mktemp -d)" cargo run -q -p tlabp-experiments --release -- import --out "$(mktemp -d)"

# Sweep-service smoke test. Serialize the fig5 plan, run it in-process
# for the reference results, then stream it through a live daemon
# (event backend, persistent memo tier) from a concurrent burst of
# clients plus one warm (memoized) client, and require every response
# byte-identical to the in-process run.
SMOKE_DIR="$(mktemp -d)"
export TLABP_SERVE_ADDR=127.0.0.1:17391
export TLABP_SERVE_MEMO_DIR="$SMOKE_DIR/memo"
cargo run -q -p tlabp-experiments --release -- plan fig5 --out "$SMOKE_DIR"
cargo run -q -p tlabp-experiments --release -- exec "$SMOKE_DIR/fig5.plan.json" --out "$SMOKE_DIR/exec"
cargo run -q -p tlabp-experiments --release -- serve &
SERVE_PID=$!
trap 'kill "$SERVE_PID" 2>/dev/null || true' EXIT
BURST_PIDS=""
for i in 1 2 3 4 5 6; do
  cargo run -q -p tlabp-experiments --release -- client "$SMOKE_DIR/fig5.plan.json" --out "$SMOKE_DIR/client-$i" &
  BURST_PIDS="$BURST_PIDS $!"
done
for pid in $BURST_PIDS; do
  wait "$pid"
done
for i in 1 2 3 4 5 6; do
  cmp "$SMOKE_DIR/exec/fig5.results.json" "$SMOKE_DIR/client-$i/fig5.results.json"
done
# Another client hits the daemon's in-memory memo cache; the replayed
# bytes must still match.
cargo run -q -p tlabp-experiments --release -- client "$SMOKE_DIR/fig5.plan.json" --out "$SMOKE_DIR/client-memo"
cmp "$SMOKE_DIR/exec/fig5.results.json" "$SMOKE_DIR/client-memo/fig5.results.json"
kill "$SERVE_PID"
wait "$SERVE_PID" 2>/dev/null || true

# Restart check: a fresh daemon process must answer the already-seen
# plan from the persistent memo tier — the client must report
# "memoized" (zero simulation work) and the bytes must still match.
cargo run -q -p tlabp-experiments --release -- serve &
SERVE_PID=$!
cargo run -q -p tlabp-experiments --release -- client "$SMOKE_DIR/fig5.plan.json" --out "$SMOKE_DIR/client-restart" | tee "$SMOKE_DIR/client-restart.log"
grep -q "memoized" "$SMOKE_DIR/client-restart.log"
cmp "$SMOKE_DIR/exec/fig5.results.json" "$SMOKE_DIR/client-restart/fig5.results.json"
kill "$SERVE_PID"
trap - EXIT
