#!/usr/bin/env sh
# Full offline verification: release build, test suite, strict clippy
# across the whole workspace, formatting, the differential/determinism
# suites under release optimization (the fast paths the benchmarks
# exercise), and a one-iteration smoke run of the throughput harness.
# Run from the repository root. Requires no network access.
set -eux

cargo build --release --workspace
cargo test -q --workspace
cargo clippy --workspace --all-targets -- -D warnings
cargo fmt --all --check
cargo test --release -q -p tlabp --test differential --test sweep_determinism --test disk_cache
TLABP_BENCH_ITERS=1 cargo run -q -p tlabp-experiments --release -- bench --out "$(mktemp -d)"
