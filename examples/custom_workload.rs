//! Write your own program for the bundled mini-RISC ISA, trace it, and
//! evaluate predictors on it.
//!
//! The program below computes Collatz ("3n+1") trajectory lengths — real
//! data-dependent control flow a profiler could not guess.
//!
//! ```text
//! cargo run --release --example custom_workload
//! ```

use tlabp::core::automaton::Automaton;
use tlabp::core::config::SchemeConfig;
use tlabp::isa::asm::assemble;
use tlabp::isa::vm::Vm;
use tlabp::sim::runner::{simulate, SimConfig};
use tlabp::trace::stats::TraceSummary;

const COLLATZ: &str = "
        ; r1 = n being tested, r2 = current value, r3 = steps,
        ; r4 = scratch, r5 = total steps, r6 = limit
        li   r1, 2
        li   r6, 4000
next_n: mv   r2, r1
        li   r3, 0
step:   li   r4, 1
        ble  r2, r4, done_n      ; while value > 1
        andi r4, r2, 1
        beq  r4, r0, even        ; data-dependent: parity of the value
        ; odd: value = 3*value + 1
        muli r2, r2, 3
        addi r2, r2, 1
        j    cont
even:   shri r2, r2, 1
cont:   addi r3, r3, 1
        j    step
done_n: add  r5, r5, r3
        addi r1, r1, 1
        blt  r1, r6, next_n
        halt
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Assemble and run the program on the VM, collecting its trace.
    let program = assemble(COLLATZ)?;
    println!("assembled {} instructions", program.len());

    let mut vm = Vm::new(program);
    let outcome = vm.run()?;
    println!("executed {} instructions", outcome.instructions);
    println!("total Collatz steps accumulated: {}", vm.reg(tlabp::isa::Reg::new(5)));

    let trace = vm.into_trace();
    let summary = TraceSummary::from_trace(&trace);
    println!(
        "trace: {} conditional branches from {} static sites, {:.1}% taken\n",
        summary.dynamic_conditional_branches,
        summary.static_conditional_branches,
        100.0 * summary.taken_rate
    );

    // How do the paper's predictors fare on the parity branch of a
    // Collatz trajectory? (The parity sequence is famously irregular.)
    for config in [
        SchemeConfig::gag(12),
        SchemeConfig::pag(12),
        SchemeConfig::pap(8),
        SchemeConfig::btb(Automaton::A2),
        SchemeConfig::always_taken(),
    ] {
        let mut predictor = config.build()?;
        let result = simulate(&mut *predictor, &trace, &SimConfig::default());
        println!("{:46} {:6.2}%", result.scheme, 100.0 * result.accuracy());
    }
    Ok(())
}
