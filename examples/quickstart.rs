//! Quickstart: build the paper's recommended predictor and measure it on
//! one workload.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use tlabp::core::config::SchemeConfig;
use tlabp::core::BranchPredictor;
use tlabp::sim::runner::{simulate, SimConfig};
use tlabp::workloads::{Benchmark, DataSet};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's conclusion: the most effective implementation of
    // Two-Level Adaptive Branch Prediction uses a per-address branch
    // history table and a global pattern history table (PAg), with 12-bit
    // history registers in a 4-way set-associative 512-entry BHT.
    let config = SchemeConfig::pag(12);
    let mut predictor = config.build()?;
    println!("predictor: {}", predictor.name());

    // Generate the eqntott-like workload trace by actually running the
    // benchmark program on the bundled mini-RISC VM.
    let benchmark = Benchmark::by_name("eqntott").expect("eqntott is in the suite");
    let trace = benchmark.trace(DataSet::Testing);
    println!(
        "workload: {} ({} dynamic conditional branches)",
        benchmark,
        trace.conditional_branches().count()
    );

    // Drive the trace-driven simulation, exactly as the paper's Section 4
    // describes: decode, predict, verify, update.
    let result = simulate(&mut *predictor, &trace, &SimConfig::default());
    println!(
        "prediction accuracy: {:.2}%  ({} correct of {})",
        100.0 * result.accuracy(),
        result.correct,
        result.predictions
    );

    // A single step of the API, spelled out: predict then update.
    let mut fresh = config.build()?;
    if let Some(branch) = trace.conditional_branches().next() {
        let predicted_taken = fresh.predict(branch);
        fresh.update(branch);
        println!(
            "first branch at {:#x}: predicted {}, actually {}",
            branch.pc,
            if predicted_taken { "taken" } else { "not taken" },
            if branch.taken { "taken" } else { "not taken" },
        );
    }
    Ok(())
}
