//! Trace tooling: generate a workload trace, save it in the binary trace
//! format, reload it, and inspect its statistics — the workflow for
//! sharing traces between machines or caching expensive generation.
//!
//! ```text
//! cargo run --release --example trace_tools
//! ```

use std::fs;

use tlabp::trace::io::{read_trace, write_trace};
use tlabp::trace::stats::{BranchMix, TraceSummary};
use tlabp::trace::BranchClass;
use tlabp::workloads::{Benchmark, DataSet};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Generate a real workload trace by running the li benchmark (the
    // eight-queens testing input of Table 2) on the mini-RISC VM.
    let benchmark = Benchmark::by_name("li").expect("li is in the suite");
    let trace = benchmark.trace(DataSet::Testing);
    println!("generated {} trace events", trace.len());

    // Serialize to the compact binary format and write it to a temp file.
    let bytes = write_trace(&trace);
    let path = std::env::temp_dir().join("li_testing.tlbp");
    fs::write(&path, &bytes)?;
    println!(
        "wrote {} ({:.1} MiB, {:.1} bytes/event)",
        path.display(),
        bytes.len() as f64 / (1024.0 * 1024.0),
        bytes.len() as f64 / trace.len() as f64
    );

    // Read it back and verify the round trip.
    let reloaded = read_trace(&fs::read(&path)?)?;
    assert_eq!(trace, reloaded, "binary round trip must be lossless");
    println!("round trip verified");

    // Inspect: the Figure 4 branch-class mix and Table 1-style summary.
    let mix = BranchMix::from_trace(&reloaded);
    println!("\nbranch mix (paper Figure 4):");
    for class in BranchClass::ALL {
        println!("  {:<14} {:>6.1}%", class.to_string(), 100.0 * mix.fraction(class));
    }
    let summary = TraceSummary::from_trace(&reloaded);
    println!("\nstatic conditional branches: {}", summary.static_conditional_branches);
    println!("dynamic conditional branches: {}", summary.dynamic_conditional_branches);
    println!("taken rate: {:.1}%", 100.0 * summary.taken_rate);
    println!("traps: {}", summary.traps);

    fs::remove_file(&path).ok();
    Ok(())
}
