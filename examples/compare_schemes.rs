//! Compare every prediction scheme across the full nine-benchmark suite —
//! a miniature of the paper's Figure 11.
//!
//! ```text
//! cargo run --release --example compare_schemes
//! ```

use tlabp::core::automaton::Automaton;
use tlabp::core::config::SchemeConfig;
use tlabp::sim::report::suite_table;
use tlabp::sim::runner::SimConfig;
use tlabp::sim::suite::{run_suite, TraceStore};

fn main() {
    let store = TraceStore::new();
    let sim = SimConfig::no_context_switch();

    let configs = [
        SchemeConfig::pag(12),
        SchemeConfig::gag(12),
        SchemeConfig::pap(8),
        SchemeConfig::psg(12),
        SchemeConfig::btb(Automaton::A2),
        SchemeConfig::btb(Automaton::LastTime),
        SchemeConfig::profiling(),
        SchemeConfig::btfn(),
        SchemeConfig::always_taken(),
    ];

    println!("running {} schemes x 9 benchmarks...\n", configs.len());
    let results: Vec<_> = configs.iter().map(|c| run_suite(c, &store, &sim)).collect();
    println!("{}", suite_table(&results).to_ascii());

    // The paper's headline: Two-Level Adaptive Branch Prediction is
    // superior to every other known scheme.
    let two_level = results[0].total_gmean();
    let best_other = results[3..].iter().map(|r| r.total_gmean()).fold(f64::NEG_INFINITY, f64::max);
    println!(
        "two-level PAg(12): {:.2}%   best non-two-level scheme: {:.2}%   margin: {:.2} points",
        100.0 * two_level,
        100.0 * best_other,
        100.0 * (two_level - best_other)
    );
}
