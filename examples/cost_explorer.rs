//! Explore the paper's hardware cost model (Section 3.4): cost versus
//! accuracy for the three variations, reproducing the Figure 8 reasoning.
//!
//! ```text
//! cargo run --release --example cost_explorer
//! ```

use tlabp::core::config::SchemeConfig;
use tlabp::core::cost::{BhtGeometry, CostModel};
use tlabp::sim::runner::SimConfig;
use tlabp::sim::suite::{run_suite, TraceStore};

fn main() {
    let model = CostModel::paper_default();
    let geometry = BhtGeometry::PAPER_DEFAULT;

    println!("cost curves (unit base costs, 30-bit addresses, s = 2):\n");
    println!("{:>4}  {:>12}  {:>12}  {:>12}", "k", "GAg (eq.4)", "PAg (eq.5)", "PAp (eq.6)");
    for k in (6..=18).step_by(2) {
        println!(
            "{k:>4}  {:>12.0}  {:>12.0}  {:>12.0}",
            model.gag_cost(k, 2),
            model.pag_cost(geometry, k, 2),
            model.pap_cost(geometry, k, 2),
        );
    }

    // The Figure 8 question: which variation reaches a target accuracy
    // most cheaply? Measure a few candidate configurations.
    println!("\nmeasuring candidate configurations (this runs the full suite)...\n");
    let store = TraceStore::new();
    let sim = SimConfig::no_context_switch();
    let candidates = [SchemeConfig::gag(18), SchemeConfig::pag(12), SchemeConfig::pap(8)];
    println!("{:<42} {:>10} {:>14}", "configuration", "accuracy", "cost");
    let mut best: Option<(String, f64)> = None;
    for config in candidates {
        let accuracy = run_suite(&config, &store, &sim).total_gmean();
        let cost = config.cost(&model).expect("two-level schemes are costed");
        println!("{:<42} {:>9.2}% {:>14.0}", config.to_string(), 100.0 * accuracy, cost);
        if best.as_ref().is_none_or(|(_, c)| cost < *c) {
            best = Some((config.to_string(), cost));
        }
    }
    let (winner, _) = best.expect("candidates are non-empty");
    println!(
        "\ncheapest at roughly equal accuracy: {winner}\n\
         (the paper's conclusion: PAg is the most cost-effective variation)"
    );
}
