//! Satellite: the disk tier of [`TraceStore`] is invisible to results.
//!
//! Every simulation number must be a pure function of the plan: whether
//! a store is memory-only, writing a cold cache directory, hydrating a
//! warm one, or recovering from a corrupted artifact file may change
//! wall-clock time, never a prediction. These tests drive the same plan
//! through all four store states and require bit-identical
//! [`ResultSet`]s, and pin the artifact lifecycle (atomic writes,
//! re-persist on deepening, footprint reporting) from the outside.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use tlabp::core::config::SchemeConfig;
use tlabp::core::BhtConfig;
use tlabp::sim::engine::execute;
use tlabp::sim::plan::{Job, Plan};
use tlabp::sim::TraceStore;
use tlabp::workloads::{Benchmark, DataSet};

/// A unique scratch cache directory per test (tests run concurrently in
/// one process; a shared dir would interleave lifecycles).
fn scratch_dir(test: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tlabp-disk-cache-{test}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A plan exercising every persisted form on one benchmark: replay jobs
/// (pattern streams, two distinct keys), a fused job (interned stream)
/// and a context-switch job (full trace).
fn plan() -> Plan {
    let li = Benchmark::by_name("li").expect("li exists");
    [
        Job::scheme(SchemeConfig::pag(8), li),
        Job::scheme(SchemeConfig::pag(8).with_bht(BhtConfig::Ideal), li),
        Job::scheme(SchemeConfig::gag(10), li).with_replay(false),
        Job::scheme(SchemeConfig::pag(8).with_context_switch(true), li),
    ]
    .into_iter()
    .collect()
}

fn artifact_paths(dir: &Path) -> Vec<PathBuf> {
    let Ok(entries) = std::fs::read_dir(dir) else { return Vec::new() };
    let mut paths: Vec<PathBuf> = entries
        .filter_map(Result::ok)
        .map(|entry| entry.path())
        .filter(|path| path.extension().is_some_and(|ext| ext == "tlabp"))
        .collect();
    paths.sort();
    paths
}

/// Memory-only, cold-disk and warm-disk executions produce bit-identical
/// result sets, and the artifact directory holds exactly the benchmark's
/// two files (one per data set would require training; this plan touches
/// only the testing trace).
#[test]
fn disk_enabled_and_disabled_agree_bit_for_bit() {
    let dir = scratch_dir("agree");
    let plan = plan();

    let memory_out = execute(&plan, &TraceStore::new());
    let cold_out = execute(&plan, &TraceStore::with_cache_dir(&dir));
    assert_eq!(memory_out, cold_out, "writing the disk cache changed results");

    let paths = artifact_paths(&dir);
    assert_eq!(paths.len(), 1, "one artifact per (benchmark, data set): {paths:?}");
    assert!(
        paths[0].file_name().unwrap().to_str().unwrap().starts_with("li-testing-v3-"),
        "artifact name carries benchmark, data set and version: {paths:?}"
    );

    let warm_out = execute(&plan, &TraceStore::with_cache_dir(&dir));
    assert_eq!(memory_out, warm_out, "hydrating from the disk cache changed results");

    let _ = std::fs::remove_dir_all(&dir);
}

/// A warm store hydrates every form without regenerating: the second
/// store's streams match the first's but are distinct allocations, and a
/// pure read leaves the artifact bytes untouched.
#[test]
fn warm_store_hydrates_all_forms_from_disk() {
    let dir = scratch_dir("hydrate");
    let li = Benchmark::by_name("li").expect("li exists");

    let cold = TraceStore::with_cache_dir(&dir);
    let _ = execute(&plan(), &cold);
    let trace = cold.get(li, DataSet::Testing);
    let interned = cold.get_interned(li, DataSet::Testing);
    let bytes_before = std::fs::read(&artifact_paths(&dir)[0]).expect("artifact exists");

    let warm = TraceStore::with_cache_dir(&dir);
    let warm_trace = warm.get(li, DataSet::Testing);
    let warm_interned = warm.get_interned(li, DataSet::Testing);
    assert_eq!(*warm_trace, *trace);
    assert_eq!(*warm_interned, *interned);
    assert!(!Arc::ptr_eq(&warm_trace, &trace), "fresh store holds its own hydrated copy");

    let bytes_after = std::fs::read(&artifact_paths(&dir)[0]).expect("artifact exists");
    assert_eq!(bytes_before, bytes_after, "hydration must not rewrite the artifact");

    let _ = std::fs::remove_dir_all(&dir);
}

/// Corruption can cost time, never correctness: a store pointed at a
/// cache whose artifact was bit-flipped (or truncated) regenerates and
/// still matches the memory-only run bit for bit — and its re-persist
/// repairs the file for the next store.
#[test]
fn corrupted_artifacts_fall_back_to_regeneration() {
    let dir = scratch_dir("corrupt");
    let plan = plan();
    let memory_out = execute(&plan, &TraceStore::new());
    let _ = execute(&plan, &TraceStore::with_cache_dir(&dir));
    let path = artifact_paths(&dir).remove(0);
    let good = std::fs::read(&path).expect("artifact exists");

    // Flip one payload bit.
    let mut flipped = good.clone();
    let mid = flipped.len() / 2;
    flipped[mid] ^= 0x10;
    std::fs::write(&path, &flipped).expect("write corrupted artifact");
    let flipped_out = execute(&plan, &TraceStore::with_cache_dir(&dir));
    assert_eq!(memory_out, flipped_out, "bit-flipped cache changed results");
    assert_eq!(
        std::fs::read(&path).expect("artifact exists"),
        good,
        "regeneration re-persists a clean artifact"
    );

    // Truncate mid-file.
    std::fs::write(&path, &good[..mid]).expect("write truncated artifact");
    let truncated_out = execute(&plan, &TraceStore::with_cache_dir(&dir));
    assert_eq!(memory_out, truncated_out, "truncated cache changed results");

    let _ = std::fs::remove_dir_all(&dir);
}

/// `cache_bytes` reports the on-disk footprint: the `disk` component
/// equals the artifact file sizes, rides into the total, and stays zero
/// for memory-only stores.
#[test]
fn cache_bytes_reports_disk_footprint() {
    let dir = scratch_dir("footprint");
    let store = TraceStore::with_cache_dir(&dir);
    assert_eq!(store.cache_bytes().disk, 0, "empty cache dir has no footprint");

    let _ = execute(&plan(), &store);
    let on_disk: usize = artifact_paths(&dir)
        .iter()
        .map(|path| std::fs::metadata(path).expect("artifact exists").len() as usize)
        .sum();
    let bytes = store.cache_bytes();
    assert!(on_disk > 0);
    assert_eq!(bytes.disk, on_disk);
    assert_eq!(
        bytes.total(),
        bytes.packed + bytes.interned + bytes.streams + bytes.disk + bytes.stream_window
    );
    assert_eq!(bytes.stream_window, 0, "no streaming cursor is open");

    let memory = TraceStore::new();
    let _ = execute(&plan(), &memory);
    assert_eq!(memory.cache_bytes().disk, 0);

    let _ = std::fs::remove_dir_all(&dir);
}

/// Cross-version reads: a cache directory written by a v2 build (v2
/// bytes under the v2-named file) hydrates transparently, produces
/// bit-identical results, and the first new derivation upgrades the slot
/// in place — a v3-named chunked artifact carrying the union of the old
/// file's sections.
#[test]
fn v2_named_artifacts_hydrate_and_upgrade_to_v3() {
    use tlabp::trace::io::{read_artifacts, write_artifacts};

    let dir = scratch_dir("crossver");
    let plan = plan();
    let memory_out = execute(&plan, &TraceStore::new());

    // Produce the slot once, then rewrite it the way a v2 build would
    // have: v2 container bytes under the v2-named path.
    let _ = execute(&plan, &TraceStore::with_cache_dir(&dir));
    let v3_path = artifact_paths(&dir).remove(0);
    let bundle =
        read_artifacts(&std::fs::read(&v3_path).expect("artifact exists")).expect("v3 decodes");
    let streams: Vec<(Vec<u8>, &tlabp::trace::PatternStream)> =
        bundle.streams.iter().map(|(key, stream)| (key.clone(), stream)).collect();
    let v2_bytes = write_artifacts(
        bundle.fingerprint,
        bundle.trace.as_ref(),
        bundle.packed.as_deref(),
        bundle.interned.as_ref(),
        &streams,
    );
    let name = v3_path.file_name().unwrap().to_str().unwrap().replace("-v3-", "-v2-");
    let v2_path = v3_path.with_file_name(name);
    std::fs::write(&v2_path, &v2_bytes).expect("write v2-named artifact");
    std::fs::remove_file(&v3_path).expect("remove v3 artifact");

    // Pure hydration from the v2 fallback: identical results, file
    // untouched (nothing new was derived, so nothing re-persists).
    let warm = TraceStore::with_cache_dir(&dir);
    assert_eq!(execute(&plan, &warm), memory_out, "v2 fallback hydration changed results");
    assert!(!v3_path.exists(), "a pure read must not rewrite the artifact");

    // A new derivation (a stream key the old file lacks) re-persists:
    // the rewrite lands under the v3 name, as a v3 container, carrying
    // the v2 file's sections forward.
    let li = Benchmark::by_name("li").expect("li exists");
    let wider: Plan = [Job::scheme(SchemeConfig::gag(13), li)].into_iter().collect();
    let wider_memory = execute(&wider, &TraceStore::new());
    assert_eq!(execute(&wider, &warm), wider_memory, "deepening the cache changed results");
    assert!(v3_path.exists(), "re-persist writes the v3-named artifact");
    let upgraded =
        read_artifacts(&std::fs::read(&v3_path).expect("artifact exists")).expect("v3 decodes");
    assert!(
        upgraded.streams.len() > bundle.streams.len(),
        "upgrade carries old sections plus the new stream"
    );
    for (key, stream) in &bundle.streams {
        let carried = upgraded.streams.iter().find(|(have, _)| have == key);
        assert_eq!(carried.map(|(_, s)| s), Some(stream), "v2 section lost in the upgrade");
    }

    let _ = std::fs::remove_dir_all(&dir);
}

/// Regression test for the disk-tier write race: several stores (as in
/// several daemon connections or concurrent driver processes) target the
/// same cache directory and the same benchmark, each deriving a
/// *different* pattern stream. The advisory artifact lock plus
/// merge-on-persist must converge the file to the union of every
/// writer's sections — not last-writer-wins over the whole artifact —
/// and leave no `.lock` or `.tmp-*` residue behind.
#[test]
fn concurrent_writers_merge_into_one_artifact() {
    let dir = scratch_dir("race");
    let li = Benchmark::by_name("li").expect("li exists");
    let widths = [6u32, 8, 10, 12];
    let plan_for =
        |k: u32| -> Plan { [Job::scheme(SchemeConfig::gag(k), li)].into_iter().collect() };

    // Reference outcomes from hermetic memory-only stores.
    let expected: Vec<_> =
        widths.iter().map(|&k| execute(&plan_for(k), &TraceStore::new())).collect();

    // Four threads, four *distinct* store instances, one directory: each
    // persists the shared li-testing artifact concurrently with a
    // different stream key inside.
    let outputs: Vec<_> = widths
        .iter()
        .map(|&k| {
            let dir = dir.clone();
            std::thread::spawn(move || execute(&plan_for(k), &TraceStore::with_cache_dir(&dir)))
        })
        .collect::<Vec<_>>()
        .into_iter()
        .map(|handle| handle.join().expect("writer thread panicked"))
        .collect();
    for (output, expected) in outputs.iter().zip(&expected) {
        assert_eq!(output, expected, "racing the disk tier changed results");
    }

    // Exactly the artifact survives: no stale advisory locks, no
    // orphaned temp files.
    let leftovers: Vec<_> = std::fs::read_dir(&dir)
        .expect("cache dir exists")
        .filter_map(Result::ok)
        .map(|entry| entry.file_name().to_string_lossy().into_owned())
        .filter(|name| !(name.starts_with("li-testing-v3-") && name.ends_with(".tlabp")))
        .collect();
    assert!(leftovers.is_empty(), "lock/temp residue after racing writers: {leftovers:?}");
    let paths = artifact_paths(&dir);
    assert_eq!(paths.len(), 1, "all writers share one artifact: {paths:?}");

    // The surviving file holds the union: a warm store replays all four
    // plans purely from hydration, and since nothing new is derived the
    // artifact bytes stay untouched.
    let bytes_before = std::fs::read(&paths[0]).expect("artifact exists");
    let warm = TraceStore::with_cache_dir(&dir);
    for (&k, expected) in widths.iter().zip(&expected) {
        assert_eq!(&execute(&plan_for(k), &warm), expected, "hydrated union changed results");
    }
    let bytes_after = std::fs::read(&paths[0]).expect("artifact exists");
    assert_eq!(bytes_before, bytes_after, "a complete union artifact must not be rewritten");

    let _ = std::fs::remove_dir_all(&dir);
}
