//! Model-based property test: the cache BHT must behave exactly like a
//! straightforward reference implementation of a set-associative LRU
//! cache of shift registers.
//!
//! Randomized op sequences come from the in-tree seeded [`SmallRng`]
//! (no proptest), so every run exercises the same cases.

use std::collections::VecDeque;

use tlabp::core::bht::CacheBht;
use tlabp::trace::rng::SmallRng;

/// Reference model: per set, an LRU-ordered list (most recent first) of
/// (tag, history bits, fresh) entries.
struct ModelBht {
    sets: Vec<VecDeque<(u64, u64, bool)>>,
    ways: usize,
    history_bits: u32,
}

impl ModelBht {
    fn new(entries: usize, ways: usize, history_bits: u32) -> Self {
        ModelBht {
            sets: (0..entries / ways).map(|_| VecDeque::new()).collect(),
            ways,
            history_bits,
        }
    }

    fn set_of(&self, pc: u64) -> usize {
        ((pc >> 2) as usize) % self.sets.len()
    }

    fn tag_of(&self, pc: u64) -> u64 {
        (pc >> 2) / self.sets.len() as u64
    }

    fn access(&mut self, pc: u64) -> bool {
        let set = self.set_of(pc);
        let tag = self.tag_of(pc);
        let entries = &mut self.sets[set];
        if let Some(index) = entries.iter().position(|&(t, _, _)| t == tag) {
            let entry = entries.remove(index).expect("found above");
            entries.push_front(entry);
            true
        } else {
            if entries.len() == self.ways {
                entries.pop_back();
            }
            let all_ones = (1u64 << self.history_bits) - 1;
            entries.push_front((tag, all_ones, true));
            false
        }
    }

    fn pattern(&self, pc: u64) -> Option<usize> {
        let set = self.set_of(pc);
        let tag = self.tag_of(pc);
        self.sets[set].iter().find(|&&(t, _, _)| t == tag).map(|&(_, history, _)| history as usize)
    }

    fn record_outcome(&mut self, pc: u64, taken: bool) -> bool {
        let set = self.set_of(pc);
        let tag = self.tag_of(pc);
        let mask = (1u64 << self.history_bits) - 1;
        // Recording an outcome does not refresh LRU order (only accesses
        // do), matching the hardware where the prediction lookup is the
        // access.
        let sets = &mut self.sets[set];
        if let Some(entry) = sets.iter_mut().find(|(t, _, _)| *t == tag) {
            if entry.2 {
                entry.1 = if taken { mask } else { 0 };
                entry.2 = false;
            } else {
                entry.1 = ((entry.1 << 1) | u64::from(taken)) & mask;
            }
            true
        } else {
            false
        }
    }

    fn flush(&mut self) {
        for set in &mut self.sets {
            set.clear();
        }
    }
}

#[derive(Debug, Clone)]
enum Op {
    Access(u64),
    Record(u64, bool),
    Flush,
}

/// Dense word-aligned pcs in a small range to force set conflicts.
fn random_op(rng: &mut SmallRng) -> Op {
    let pc = 0x1000 + rng.next_below(64) * 4;
    match rng.next_below(9) {
        0..=3 => Op::Access(pc),
        4..=7 => Op::Record(pc, rng.random_bool(0.5)),
        _ => Op::Flush,
    }
}

#[test]
fn cache_bht_matches_reference_model() {
    let mut rng = SmallRng::seed_from_u64(0xB001);
    const GEOMETRIES: [(usize, usize); 4] = [(8, 1), (8, 2), (16, 4), (32, 4)];
    for case in 0..48u64 {
        let (entries, ways) = GEOMETRIES[rng.next_below(4) as usize];
        let history_bits = rng.next_range(1, 17) as u32;
        let mut real = CacheBht::new(entries, ways, history_bits);
        let mut model = ModelBht::new(entries, ways, history_bits);
        let steps = rng.next_range(1, 400);
        for step in 0..steps {
            match random_op(&mut rng) {
                Op::Access(pc) => {
                    let a = real.access(pc);
                    let b = model.access(pc);
                    assert_eq!(a, b, "hit/miss diverged at step {step} of case {case}");
                }
                Op::Record(pc, taken) => {
                    let a = real.record_outcome(pc, taken);
                    let b = model.record_outcome(pc, taken);
                    assert_eq!(a, b, "record presence diverged at step {step} of case {case}");
                }
                Op::Flush => {
                    real.flush();
                    model.flush();
                }
            }
            // Full-state comparison via observable patterns.
            for word in 0..64u64 {
                let pc = 0x1000 + word * 4;
                assert_eq!(
                    real.pattern(pc),
                    model.pattern(pc),
                    "pattern diverged for pc {pc:#x} at step {step} of case {case}"
                );
            }
        }
    }
}
