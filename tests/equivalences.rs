//! Structural equivalences between schemes: degenerate configurations of
//! the per-address predictors must collapse onto the global ones, and
//! composed schemes must match their building blocks. These pin down the
//! relationships the paper's Section 2.2 describes.

use tlabp::core::automaton::Automaton;
use tlabp::core::bht::BhtConfig;
use tlabp::core::predictor::BranchPredictor;
use tlabp::core::schemes::{Btb, Gag, Gshare, Pag, Pap};
use tlabp::trace::BranchRecord;

/// A single-branch outcome stream (pc constant).
fn stream(len: usize, seed: u64) -> Vec<BranchRecord> {
    let mut state = seed | 1;
    (0..len)
        .map(|i| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            BranchRecord::conditional(0, (state >> 62) & 1 == 1, 0x40, i as u64 + 1)
        })
        .collect()
}

fn decisions(predictor: &mut dyn BranchPredictor, records: &[BranchRecord]) -> Vec<bool> {
    records
        .iter()
        .map(|record| {
            let predicted = predictor.predict(record);
            predictor.update(record);
            predicted
        })
        .collect()
}

/// For a single static branch, GAg, PAg and PAp are the same machine:
/// one history register over one pattern table.
#[test]
fn per_address_schemes_collapse_to_gag_on_one_branch() {
    for seed in [3u64, 17, 99] {
        let records = stream(600, seed);
        let mut gag = Gag::new(10, Automaton::A2);
        let reference = decisions(&mut gag, &records);

        let mut pag = Pag::new(10, BhtConfig::Ideal, Automaton::A2);
        let mut pap = Pap::new(10, BhtConfig::Ideal, Automaton::A2);
        let mut pag_tiny = Pag::new(10, BhtConfig::Cache { entries: 1, ways: 1 }, Automaton::A2);
        assert_eq!(decisions(&mut pag, &records), reference, "PAg/IBHT, seed {seed}");
        assert_eq!(decisions(&mut pap, &records), reference, "PAp/IBHT, seed {seed}");
        assert_eq!(decisions(&mut pag_tiny, &records), reference, "PAg/1-entry cache, seed {seed}");
    }
}

/// Gshare's XOR with a zero address is the identity, so at pc 0 gshare
/// *is* GAg.
#[test]
fn gshare_at_address_zero_is_gag() {
    let records = stream(500, 7);
    let mut gag = Gag::new(12, Automaton::A2);
    let mut gshare = Gshare::new(12, Automaton::A2);
    assert_eq!(decisions(&mut gshare, &records), decisions(&mut gag, &records));
}

/// A BTB entry for one branch is just the bare automaton.
#[test]
fn btb_on_one_branch_is_the_bare_automaton() {
    for automaton in [Automaton::A2, Automaton::LastTime] {
        let records = stream(400, 23);
        let mut btb = Btb::paper_default(automaton);
        let got = decisions(&mut btb, &records);

        // Reference: run the automaton directly.
        let mut state = automaton.initial_state();
        let expected: Vec<bool> = records
            .iter()
            .map(|record| {
                let predicted = automaton.predict(state);
                state = automaton.update(state, record.taken);
                predicted
            })
            .collect();
        assert_eq!(got, expected, "{automaton}");
    }
}

/// The history-length hierarchy: on a learnable pattern whose period is
/// below every k tested, all two-level variations converge to the same
/// steady state (perfect prediction).
#[test]
fn all_variations_agree_in_steady_state_on_short_patterns() {
    let pattern = [true, false, true, true];
    let records: Vec<BranchRecord> = (0..800usize)
        .map(|i| BranchRecord::conditional(0x80, pattern[i % 4], 0x20, i as u64 + 1))
        .collect();
    for k in [6u32, 8, 12] {
        let mut gag = Gag::new(k, Automaton::A2);
        let mut pag = Pag::new(k, BhtConfig::PAPER_DEFAULT, Automaton::A2);
        let gag_tail = &decisions(&mut gag, &records)[400..];
        let pag_tail = &decisions(&mut pag, &records)[400..];
        let actual_tail: Vec<bool> = records[400..].iter().map(|r| r.taken).collect();
        assert_eq!(gag_tail, actual_tail.as_slice(), "GAg k={k}");
        assert_eq!(pag_tail, actual_tail.as_slice(), "PAg k={k}");
    }
}

/// Two interleaved branches: PAg with an ideal BHT must behave as two
/// independent GAg machines over a shared pattern table would.
#[test]
fn pag_is_per_branch_histories_over_a_shared_table() {
    use tlabp::core::history::HistoryRegister;
    use tlabp::core::pht::PatternHistoryTable;

    let mut records = Vec::new();
    let mut state = 123u64;
    for i in 0..500u64 {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(99);
        records.push(BranchRecord::conditional(
            if i % 2 == 0 { 0x100 } else { 0x200 },
            (state >> 61) & 1 == 1,
            0x40,
            i + 1,
        ));
    }

    let mut pag = Pag::new(6, BhtConfig::Ideal, Automaton::A2);
    let got = decisions(&mut pag, &records);

    // Reference: hand-rolled per-branch histories + shared PHT, with the
    // paper's miss policy (all-ones then first-result extension).
    let mut pht = PatternHistoryTable::new(6, Automaton::A2);
    let mut histories: std::collections::HashMap<u64, (HistoryRegister, bool)> =
        std::collections::HashMap::new();
    let expected: Vec<bool> = records
        .iter()
        .map(|record| {
            let (history, fresh) =
                histories.entry(record.pc).or_insert((HistoryRegister::all_ones(6), true));
            let predicted = pht.predict(history.pattern());
            pht.update(history.pattern(), record.taken);
            if *fresh {
                history.fill(record.taken);
                *fresh = false;
            } else {
                history.shift_in(record.taken);
            }
            predicted
        })
        .collect();
    assert_eq!(got, expected);
}
