//! Fast checks of the paper's qualitative claims on controlled synthetic
//! traces (the full-suite versions live in the experiments harness).

use tlabp::core::automaton::Automaton;
use tlabp::core::config::SchemeConfig;
use tlabp::core::cost::{BhtGeometry, CostModel};
use tlabp::sim::runner::{simulate, SimConfig};
use tlabp::trace::synth::{
    BiasedCoins, CorrelatedBranches, Correlation, MarkovBranches, RepeatingPattern,
};
use tlabp::trace::Trace;

fn accuracy(config: &SchemeConfig, trace: &Trace) -> f64 {
    let mut predictor = config.build().expect("non-training scheme");
    simulate(&mut *predictor, trace, &SimConfig::no_context_switch()).accuracy()
}

/// "The mechanism uses two levels of branch history" — on a branch whose
/// outcome depends on the outcomes of *other* branches, global history
/// shines while per-branch counters are stuck at the bias.
///
/// The trace is two random feeder branches plus one XOR-dependent branch,
/// so only one branch in three is predictable at all: a perfect global
/// predictor tops out at (0.5 + 0.5 + 1.0) / 3 ≈ 67%, a counter at 50%.
#[test]
fn global_history_captures_correlation() {
    let trace = CorrelatedBranches::new(Correlation::Xor, 4000, 0.5, 42).generate();
    let gag = accuracy(&SchemeConfig::gag(8), &trace);
    let btb = accuracy(&SchemeConfig::btb(Automaton::A2), &trace);
    assert!(gag > 0.62, "GAg must learn the XOR branch (ceiling ≈ 0.67): {gag:.4}");
    assert!(btb < 0.58, "a per-branch counter cannot learn XOR: {btb:.4}");
    assert!(gag > btb + 0.08, "GAg {gag:.4} vs BTB {btb:.4}");
}

/// Figure 5's reasoning: the four-state automata "maintain more history
/// information than Last-Time ... they are therefore more tolerant to the
/// deviations in the execution history". Inject sparse deviations into a
/// learnable pattern: Last-Time pays for each deviation twice (it flips
/// the entry, then mispredicts the return to normal), A2 pays once.
#[test]
fn four_state_automata_tolerate_deviations() {
    use tlabp::trace::BranchRecord;

    let pattern = [true, true, false, true, true, true, false];
    let mut trace = Trace::new();
    let mut instret = 0u64;
    for i in 0..6000u64 {
        instret += 4;
        let base = pattern[(i % 7) as usize];
        // Deterministic sparse deviation: every 47th execution flips.
        let taken = if i % 47 == 13 { !base } else { base };
        trace.push(BranchRecord::conditional(0x40, taken, 0x10, instret));
    }
    let a2 = accuracy(&SchemeConfig::pag(8), &trace);
    let lt = accuracy(&SchemeConfig::pag(8).with_automaton(Automaton::LastTime), &trace);
    assert!(a2 > lt, "A2 ({a2:.4}) must beat Last-Time ({lt:.4}) under deviations");
    assert!(a2 > 0.95, "A2 should still nail the noisy pattern: {a2:.4}");
}

/// Figure 7's monotonicity: more global history never hurts much, and
/// markedly helps on long patterns.
#[test]
fn longer_global_history_helps_on_long_patterns() {
    // Period-15 pattern built from long runs of taken: its 6-bit windows
    // (e.g. six consecutive "taken") are ambiguous — they occur at
    // multiple positions with different successors — while every
    // 14-bit window is unique.
    let pattern = [
        true, true, true, true, true, true, true, false, // 7 taken, exit
        true, true, true, true, true, true,  // 6 taken
        false, // second exit
    ];
    let trace = RepeatingPattern::new(&pattern, 1500).generate();
    let short = accuracy(&SchemeConfig::gag(6), &trace);
    let long = accuracy(&SchemeConfig::gag(14), &trace);
    assert!(long > short + 0.05, "GAg(14) = {long:.4} must clearly beat GAg(6) = {short:.4}");
    assert!(long > 0.99, "GAg(14) should be near-perfect: {long:.4}");
}

/// Section 4.2: initialization biases predictions toward taken, so a
/// taken-heavy cold-start stream is predicted well immediately.
#[test]
fn cold_start_predicts_taken() {
    let trace = BiasedCoins::uniform(32, 1.0, 4, 7).generate();
    for config in [
        SchemeConfig::gag(8),
        SchemeConfig::pag(8),
        SchemeConfig::pap(8),
        SchemeConfig::btb(Automaton::A2),
    ] {
        let acc = accuracy(&config, &trace);
        assert!(
            (acc - 1.0).abs() < 1e-12,
            "{config}: all-taken cold start must be perfect, got {acc}"
        );
    }
}

/// Figure 8 / Section 5.1.3: at roughly equal accuracy, PAg is the
/// cheapest of the three variations under the Section 3.4 cost model.
#[test]
fn pag_is_cheapest_at_equal_accuracy() {
    let model = CostModel::paper_default();
    let gag = SchemeConfig::gag(18).cost(&model).unwrap();
    let pag = SchemeConfig::pag(12).cost(&model).unwrap();
    let pap = SchemeConfig::pap(8).cost(&model).unwrap();
    assert!(pag < gag && pag < pap, "PAg {pag} vs GAg {gag}, PAp {pap}");
}

/// Equation 4: GAg's cost doubles (asymptotically) with each history bit.
#[test]
fn gag_cost_grows_exponentially() {
    let model = CostModel::paper_default();
    let mut previous = model.gag_cost(6, 2);
    for k in 7..=18 {
        let cost = model.gag_cost(k, 2);
        assert!(cost > previous * 1.5, "k={k}: {cost} vs {previous}");
        previous = cost;
    }
}

/// Equations 5/6: PAg and PAp costs are linear in the BHT size, with PAp's
/// slope dominated by the per-entry pattern tables.
#[test]
fn pap_slope_exceeds_pag_slope() {
    let model = CostModel::paper_default();
    let small = BhtGeometry { entries: 256, ways: 4 };
    let large = BhtGeometry { entries: 1024, ways: 4 };
    let pag_slope = model.pag_cost(large, 10, 2) - model.pag_cost(small, 10, 2);
    let pap_slope = model.pap_cost(large, 10, 2) - model.pap_cost(small, 10, 2);
    assert!(pap_slope > 10.0 * pag_slope, "PAp slope {pap_slope} must dwarf PAg slope {pag_slope}");
}

/// Section 3.3: an ideal BHT can only help relative to a practical one.
///
/// The trace needs per-branch *structure* for the claim to be testable:
/// on independent coin flips an evicted history register costs nothing,
/// so the sign of the margin is pure noise. Persistent Markov branches
/// make every eviction discard genuinely predictive history.
#[test]
fn ideal_bht_dominates_practical_bht() {
    // A working set of 2000 branches overflows a 512-entry BHT.
    let trace = MarkovBranches::new(2000, 0.9, 40, 3).generate();
    let practical = accuracy(&SchemeConfig::pag(8), &trace);
    let ideal = accuracy(&SchemeConfig::pag(8).with_bht(tlabp::core::BhtConfig::Ideal), &trace);
    assert!(ideal >= practical, "ideal ({ideal:.4}) must be at least practical ({practical:.4})");
}
