//! End-to-end integration: workload program → VM execution → trace →
//! binary IO → predictor simulation, spanning every crate in the
//! workspace.

use tlabp::core::automaton::Automaton;
use tlabp::core::config::SchemeConfig;
use tlabp::sim::runner::{simulate, SimConfig};
use tlabp::trace::io::{read_trace, write_trace};
use tlabp::trace::stats::TraceSummary;
use tlabp::workloads::{Benchmark, DataSet};

#[test]
fn workload_to_prediction_pipeline() {
    let benchmark = Benchmark::by_name("li").expect("li exists");
    let trace = benchmark.trace(DataSet::Testing);

    // The trace survives a binary round trip bit-exactly.
    let reloaded = read_trace(&write_trace(&trace)).expect("trace decodes");
    assert_eq!(trace, reloaded);

    // A two-level predictor achieves sensible accuracy on it.
    let mut predictor = SchemeConfig::pag(12).build().expect("PAg builds");
    let result = simulate(&mut *predictor, &reloaded, &SimConfig::default());
    assert!(result.predictions > 40_000);
    assert!(result.accuracy() > 0.8, "PAg(12) on li: {:.4}", result.accuracy());
}

#[test]
fn trace_generation_is_deterministic() {
    let benchmark = Benchmark::by_name("espresso").expect("espresso exists");
    let a = benchmark.trace(DataSet::Testing);
    let b = benchmark.trace(DataSet::Testing);
    assert_eq!(a, b, "same benchmark + data set must give identical traces");
}

#[test]
fn two_level_beats_counters_on_an_integer_workload() {
    // The paper's central comparison, on one integer benchmark.
    let trace = Benchmark::by_name("doduc").expect("doduc exists").trace(DataSet::Testing);
    let sim = SimConfig::no_context_switch();

    let mut pag = SchemeConfig::pag(12).build().unwrap();
    let mut btb = SchemeConfig::btb(Automaton::A2).build().unwrap();
    let pag_acc = simulate(&mut *pag, &trace, &sim).accuracy();
    let btb_acc = simulate(&mut *btb, &trace, &sim).accuracy();
    assert!(
        pag_acc > btb_acc + 0.03,
        "two-level ({pag_acc:.4}) must clearly beat the BTB counter ({btb_acc:.4})"
    );
}

#[test]
fn parsed_config_behaves_identically_to_constructed_config() {
    let trace = Benchmark::by_name("eqntott").expect("eqntott exists").trace(DataSet::Testing);
    let sim = SimConfig::no_context_switch();

    let constructed = SchemeConfig::pag(10);
    let parsed: SchemeConfig =
        "PAg(BHT(512,4,10-sr),1xPHT(2^10,A2))".parse().expect("valid notation");
    assert_eq!(parsed, constructed);

    let a = simulate(&mut *constructed.build().unwrap(), &trace, &sim);
    let b = simulate(&mut *parsed.build().unwrap(), &trace, &sim);
    assert_eq!(a.correct, b.correct, "identical configs must predict identically");
}

#[test]
fn context_switches_reduce_accuracy_on_gcc() {
    // gcc's many traps make it the context-switch stress case
    // (Section 5.1.4).
    let trace = Benchmark::by_name("gcc").expect("gcc exists").trace(DataSet::Testing);
    let summary = TraceSummary::from_trace(&trace);
    assert!(summary.traps > 100, "gcc must trap a lot, got {}", summary.traps);

    let run = |sim: &SimConfig| {
        let mut p = SchemeConfig::pag(12).build().unwrap();
        simulate(&mut *p, &trace, sim)
    };
    let without = run(&SimConfig::no_context_switch());
    let with = run(&SimConfig::paper_context_switch());
    assert!(with.context_switches > 100);
    assert!(
        with.accuracy() < without.accuracy(),
        "flushing the BHT must cost accuracy: {} vs {}",
        with.accuracy(),
        without.accuracy()
    );
}

#[test]
fn training_schemes_train_on_training_trace_and_run_on_testing() {
    let benchmark = Benchmark::by_name("espresso").expect("espresso exists");
    let training = benchmark.trace(DataSet::Training);
    let testing = benchmark.trace(DataSet::Testing);

    for config in [SchemeConfig::psg(10), SchemeConfig::gsg(10), SchemeConfig::profiling()] {
        let mut predictor = config.build_trained(&training);
        let result = simulate(&mut *predictor, &testing, &SimConfig::default());
        assert!(result.accuracy() > 0.6, "{}: accuracy {:.4}", config, result.accuracy());
    }
}

#[test]
fn branch_mix_is_conditional_dominated() {
    // Figure 4: conditional branches dominate the dynamic branch mix.
    for name in ["gcc", "li", "doduc"] {
        let trace = Benchmark::by_name(name).unwrap().trace(DataSet::Testing);
        let summary = TraceSummary::from_trace(&trace);
        assert!(
            summary.mix.fraction(tlabp::trace::BranchClass::Conditional) > 0.5,
            "{name}: conditional fraction {:?}",
            summary.mix
        );
    }
}
