//! Property tests of the mini-RISC substrate: the VM's arithmetic matches
//! a Rust reference evaluator, generated loops emit exactly the branches
//! they should, and assembled programs behave like builder-built ones.
//!
//! Randomized cases come from the in-tree seeded [`SmallRng`] (no
//! proptest), so every run exercises the same inputs.

use tlabp::isa::asm::assemble;
use tlabp::isa::inst::{AluOp, Cond, Reg};
use tlabp::isa::program::ProgramBuilder;
use tlabp::isa::vm::Vm;
use tlabp::trace::rng::SmallRng;

fn eval_reference(op: AluOp, a: i64, b: i64) -> Option<i64> {
    Some(match op {
        AluOp::Add => a.wrapping_add(b),
        AluOp::Sub => a.wrapping_sub(b),
        AluOp::Mul => a.wrapping_mul(b),
        AluOp::Div => {
            if b == 0 {
                return None;
            }
            a.wrapping_div(b)
        }
        AluOp::Rem => {
            if b == 0 {
                return None;
            }
            a.wrapping_rem(b)
        }
        AluOp::And => a & b,
        AluOp::Or => a | b,
        AluOp::Xor => a ^ b,
        AluOp::Shl => a.wrapping_shl((b & 0x3f) as u32),
        AluOp::Shr => a.wrapping_shr((b & 0x3f) as u32),
        AluOp::Slt => i64::from(a < b),
    })
}

const ALU_OPS: [AluOp; 11] = [
    AluOp::Add,
    AluOp::Sub,
    AluOp::Mul,
    AluOp::Div,
    AluOp::Rem,
    AluOp::And,
    AluOp::Or,
    AluOp::Xor,
    AluOp::Shl,
    AluOp::Shr,
    AluOp::Slt,
];

/// Every ALU operation computes exactly what the Rust reference says,
/// including wrapping behavior; division by zero faults.
#[test]
fn alu_matches_reference() {
    let mut rng = SmallRng::seed_from_u64(0xC001);
    for case in 0..256u64 {
        let op = ALU_OPS[rng.next_below(ALU_OPS.len() as u64) as usize];
        // Mix full-range and small operands so div/rem/shift edge cases
        // (zero, negatives, i64::MIN) come up often.
        let operand = |rng: &mut SmallRng| -> i64 {
            match rng.next_below(4) {
                0 => rng.next_u64() as i64,
                1 => rng.next_range(0, 8) as i64 - 4,
                2 => i64::MIN,
                _ => i64::MAX - rng.next_below(4) as i64,
            }
        };
        let a = operand(&mut rng);
        let b = operand(&mut rng);
        let mut builder = ProgramBuilder::new();
        builder.li(Reg::new(1), a);
        builder.li(Reg::new(2), b);
        builder.alu(op, Reg::new(3), Reg::new(1), Reg::new(2));
        builder.halt();
        let mut vm = Vm::with_limits(builder.build().expect("valid program"), 16, 100);
        match eval_reference(op, a, b) {
            Some(expected) => {
                vm.run().expect("program runs");
                assert_eq!(vm.reg(Reg::new(3)), expected, "{op:?}({a}, {b}) in case {case}");
            }
            None => {
                assert!(vm.run().is_err(), "division by zero must fault (case {case})");
            }
        }
    }
}

/// A counted loop of n iterations emits exactly n conditional-branch
/// records, n-1 of them taken, all with the same pc.
#[test]
fn counted_loops_emit_exact_branch_counts() {
    let mut rng = SmallRng::seed_from_u64(0xC002);
    for _ in 0..32u64 {
        let n = rng.next_range(1, 200) as i64;
        let mut builder = ProgramBuilder::new();
        let counter = Reg::new(1);
        let limit = Reg::new(2);
        builder.li(counter, 0);
        builder.li(limit, n);
        let top = builder.label("top");
        builder.bind(top);
        builder.addi(counter, counter, 1);
        builder.branch(Cond::Lt, counter, limit, top);
        builder.halt();
        let mut vm = Vm::with_limits(builder.build().expect("valid program"), 16, 100_000);
        vm.run().expect("program runs");
        let trace = vm.into_trace();
        let branches: Vec<_> = trace.conditional_branches().collect();
        assert_eq!(branches.len(), n as usize);
        let taken = branches.iter().filter(|b| b.taken).count();
        assert_eq!(taken, n as usize - 1);
        assert!(branches.iter().all(|b| b.pc == branches[0].pc));
    }
}

/// Text assembly and the builder API produce behaviorally identical
/// programs for a parameterized accumulate loop.
#[test]
fn assembler_and_builder_agree() {
    let mut rng = SmallRng::seed_from_u64(0xC003);
    for _ in 0..32u64 {
        let n = rng.next_range(1, 100) as i64;
        let step = rng.next_range(0, 100) as i64 - 50;
        let source = format!(
            "       li   r1, 0
                    li   r2, {n}
                    li   r3, 0
             top:   addi r3, r3, {step}
                    addi r1, r1, 1
                    blt  r1, r2, top
                    halt"
        );
        let assembled = assemble(&source).expect("valid assembly");

        let mut builder = ProgramBuilder::new();
        builder.li(Reg::new(1), 0);
        builder.li(Reg::new(2), n);
        builder.li(Reg::new(3), 0);
        let top = builder.label("top");
        builder.bind(top);
        builder.addi(Reg::new(3), Reg::new(3), step);
        builder.addi(Reg::new(1), Reg::new(1), 1);
        builder.branch(Cond::Lt, Reg::new(1), Reg::new(2), top);
        builder.halt();
        let built = builder.build().expect("valid program");

        assert_eq!(assembled.instructions(), built.instructions());

        let mut vm_a = Vm::with_limits(assembled, 16, 100_000);
        let mut vm_b = Vm::with_limits(built, 16, 100_000);
        vm_a.run().expect("assembled program runs");
        vm_b.run().expect("built program runs");
        assert_eq!(vm_a.reg(Reg::new(3)), n.wrapping_mul(step));
        assert_eq!(vm_a.trace(), vm_b.trace());
    }
}

/// Call/return nesting of arbitrary depth unwinds correctly and emits
/// balanced call/return records.
#[test]
fn call_return_balance() {
    for depth in [1usize, 2, 3, 7, 15, 29] {
        let mut builder = ProgramBuilder::new();
        let labels: Vec<_> = (0..depth).map(|i| builder.label(format!("fn{i}"))).collect();
        builder.call(labels[0]);
        builder.halt();
        for (i, label) in labels.iter().enumerate() {
            builder.bind(*label);
            builder.addi(Reg::new(1), Reg::new(1), 1);
            if i + 1 < depth {
                builder.call(labels[i + 1]);
            }
            builder.ret();
        }
        let mut vm = Vm::with_limits(builder.build().expect("valid program"), 16, 100_000);
        vm.run().expect("program runs");
        assert_eq!(vm.reg(Reg::new(1)), depth as i64);
        let trace = vm.into_trace();
        let calls = trace.branches().filter(|b| b.class == tlabp::trace::BranchClass::Call).count();
        let returns =
            trace.branches().filter(|b| b.class == tlabp::trace::BranchClass::Return).count();
        assert_eq!(calls, depth);
        assert_eq!(returns, depth);
    }
}
