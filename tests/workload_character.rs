//! Each workload stand-in must keep the branch character its namesake is
//! documented to have (Section 4.1 of the paper, DESIGN.md substitution
//! 2). These tests pin that character down so future edits to the
//! generators cannot silently drift away from it.

use tlabp::core::config::SchemeConfig;
use tlabp::sim::runner::{simulate, SimConfig};
use tlabp::trace::stats::TraceSummary;
use tlabp::trace::BranchClass;
use tlabp::workloads::{Benchmark, BenchmarkKind, DataSet};

fn summary(name: &str) -> TraceSummary {
    let trace = Benchmark::by_name(name).expect("known benchmark").trace(DataSet::Testing);
    TraceSummary::from_trace(&trace)
}

/// "Fpppp, matrix300 and tomcatv have repetitive loop execution; thus a
/// very high prediction accuracy is attainable, independent of the
/// predictors used."
#[test]
fn regular_fp_benchmarks_are_easy_for_everyone() {
    for name in ["fpppp", "matrix300", "tomcatv"] {
        let trace = Benchmark::by_name(name).unwrap().trace(DataSet::Testing);
        // Even a plain 2-bit-counter BTB does well here.
        let mut btb = SchemeConfig::btb(tlabp::core::Automaton::A2).build().expect("BTB builds");
        let accuracy = simulate(&mut *btb, &trace, &SimConfig::no_context_switch()).accuracy();
        assert!(accuracy > 0.8, "{name}: BTB accuracy {accuracy:.4}");
    }
}

/// "It is on the integer benchmarks where a branch predictor's mettle is
/// tested": the two-level edge over a counter BTB must be biggest on
/// integer codes.
#[test]
fn two_level_edge_is_larger_on_integer_codes() {
    let sim = SimConfig::no_context_switch();
    let mut edges = Vec::new();
    for kind in [BenchmarkKind::Integer, BenchmarkKind::FloatingPoint] {
        let mut edge_sum = 0.0;
        let mut count = 0;
        for benchmark in Benchmark::of_kind(kind) {
            let trace = benchmark.trace(DataSet::Testing);
            let mut pag = SchemeConfig::pag(12).build().unwrap();
            let mut btb = SchemeConfig::btb(tlabp::core::Automaton::A2).build().unwrap();
            edge_sum += simulate(&mut *pag, &trace, &sim).accuracy()
                - simulate(&mut *btb, &trace, &sim).accuracy();
            count += 1;
        }
        edges.push(edge_sum / f64::from(count));
    }
    assert!(edges[0] > 0.0 && edges[1] > 0.0, "two-level must win on both groups: {edges:?}");
}

/// gcc is the static-branch giant and the trap factory.
#[test]
fn gcc_character() {
    let s = summary("gcc");
    assert!(s.static_conditional_branches > 3_000);
    assert!(s.traps > 100);
}

/// li is the recursion benchmark: returns must be a visible slice of the
/// dynamic branch mix.
#[test]
fn li_is_recursion_heavy() {
    let s = summary("li");
    let return_fraction = s.mix.fraction(BranchClass::Return);
    assert!(return_fraction > 0.02, "li returns fraction {return_fraction:.4}");
    assert_eq!(s.mix.calls, s.mix.returns, "calls and returns must balance");
}

/// fpppp is branch-sparse ("very few conditional branches ... regular
/// behavior").
#[test]
fn fpppp_is_branch_sparse() {
    let s = summary("fpppp");
    assert!(
        s.branch_instruction_fraction < 0.15,
        "fpppp branch fraction {}",
        s.branch_instruction_fraction
    );
}

/// matrix300's control flow is data-independent: identical data sets per
/// run, zero traps, extremely high taken rate (pure loop nests).
#[test]
fn matrix300_is_pure_loops() {
    let s = summary("matrix300");
    assert_eq!(s.traps, 0);
    assert!(s.taken_rate > 0.85, "taken rate {}", s.taken_rate);
}

/// Training inputs are smaller than testing inputs wherever Table 2 has
/// both (the paper trains on reduced data sets like `cexp.i` and
/// `short greycode.in`).
#[test]
fn training_inputs_are_smaller() {
    for benchmark in Benchmark::ALL.iter().filter(|b| b.has_training_set()) {
        let train = benchmark.trace(DataSet::Training);
        let test = benchmark.trace(DataSet::Testing);
        assert!(
            train.total_instructions() < test.total_instructions(),
            "{}: training {} !< testing {}",
            benchmark.name(),
            train.total_instructions(),
            test.total_instructions()
        );
    }
}

/// Every benchmark's program is a genuine mini-RISC program: it assembles
/// to a non-trivial instruction count and its label metadata is intact.
#[test]
fn programs_are_substantial() {
    for benchmark in &Benchmark::ALL {
        let program = benchmark.program(DataSet::Testing);
        assert!(program.len() > 500, "{}: only {} instructions", benchmark.name(), program.len());
        assert!(program.static_conditional_branches() > 50, "{}", benchmark.name());
    }
}
