//! Differential tests pinning the chunked streaming trace pipeline to
//! the in-memory paths.
//!
//! The streaming tier replaces a hydrated [`PatternStream`] walk with a
//! chunk-by-chunk walk over a persisted v3 artifact
//! ([`tlabp::sim::StreamCursor`] feeding
//! [`simulate_replay_transposed_streamed`]), with a decode thread
//! reading ahead behind a bounded resident-byte window. None of that may
//! change a single prediction: for every replay-eligible scheme
//! structure crossed with every automaton, on every trace, under every
//! kernel tier, the streamed walk must reproduce the in-memory walk bit
//! for bit — and on a stream several times larger than the window, the
//! peak resident bytes must stay under the cap while doing so.

use std::sync::Arc;

use tlabp::core::automaton::Automaton;
use tlabp::core::config::SchemeConfig;
use tlabp::core::{BhtConfig, SimdMode};
use tlabp::sim::runner::{derive_pattern_stream, replay_stream_key, StreamKey};
use tlabp::sim::{
    simulate_replay_transposed, simulate_replay_transposed_streamed, StreamCursor, StreamWindow,
    TraceStore,
};
use tlabp::trace::io::write_artifacts_chunked;
use tlabp::trace::synth::{BiasedCoins, CorrelatedBranches, Correlation, LoopNest, MarkovBranches};
use tlabp::trace::{InternedConds, PatternStream, Trace};
use tlabp::workloads::{Benchmark, DataSet};

/// Every kernel tier the transposed replay kernel can be forced onto.
const KERNELS: [SimdMode; 5] =
    [SimdMode::Swar, SimdMode::Scalar, SimdMode::Sse2, SimdMode::Avx2, SimdMode::Avx512];

/// The replay-eligible scheme structures of the differential suite:
/// global register, ideal and cache BHTs, and the per-address (laned)
/// second level.
fn structures() -> Vec<SchemeConfig> {
    vec![
        SchemeConfig::gag(8),
        SchemeConfig::pag(8),
        SchemeConfig::pag(10).with_bht(BhtConfig::Cache { entries: 256, ways: 1 }),
        SchemeConfig::pag(12).with_bht(BhtConfig::Ideal),
        SchemeConfig::pap(6),
    ]
}

fn traces() -> Vec<(&'static str, Trace)> {
    vec![
        ("loop_nest", LoopNest::new(&[40, 11, 3]).generate()),
        ("biased_coins", BiasedCoins::uniform(24, 0.7, 400, 7).generate()),
        ("correlated", CorrelatedBranches::new(Correlation::Xor, 2000, 0.5, 11).generate()),
        ("markov", MarkovBranches::new(16, 0.85, 3000, 23).generate()),
        ("li_testing", Benchmark::by_name("li").expect("li exists").trace(DataSet::Testing)),
    ]
}

/// A scratch directory unique to this test binary run.
fn scratch(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("tlabp-streaming-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

/// Persists `stream` under `key` as a v3 artifact with a deliberately
/// tiny chunk budget, so even the synthetic fixtures span many chunks.
fn persist_stream(path: &std::path::Path, key: StreamKey, stream: &PatternStream) {
    let bytes = write_artifacts_chunked(0, None, None, None, &[(key.to_bytes(), stream)], 1);
    std::fs::write(path, bytes).expect("artifact writes");
}

/// Streaming replay is bit-identical to the in-memory transposed walk
/// for every scheme structure × automaton (plus the trained preset-bit
/// schemes) on every trace, under every kernel tier. Each structure's
/// automaton ablations replay as one batch over the shared persisted
/// stream — the same batching the engine's fold grouping produces.
#[test]
fn streamed_replay_matches_in_memory_for_every_scheme_automaton_and_kernel() {
    let dir = scratch("differential");
    let training = BiasedCoins::uniform(24, 0.7, 400, 8).generate();
    let window = Arc::new(StreamWindow::new());

    for (trace_name, trace) in traces() {
        let interned = InternedConds::from_trace(&trace);
        // One batch per structure: the five Figure 5 automata, plus the
        // trained preset-bit member where the structure supports it.
        for structure in structures() {
            let key = replay_stream_key(structure).expect("structure has a stream key");
            let stream = derive_pattern_stream(&interned, key);
            let path = dir.join(format!("{trace_name}-{structure}.tlabp"));
            persist_stream(&path, key, &stream);

            let mut configs: Vec<SchemeConfig> = Automaton::FIGURE5
                .iter()
                .map(|&automaton| structure.with_automaton(automaton))
                .collect();
            match key {
                StreamKey::Global { history_bits } => configs.push(SchemeConfig::gsg(history_bits)),
                StreamKey::Bht(signature) if signature.config == BhtConfig::PAPER_DEFAULT => {
                    configs.push(SchemeConfig::psg(signature.history_bits));
                }
                StreamKey::Bht(_) => {}
            }
            let predictors: Vec<_> = configs
                .iter()
                .map(|config| {
                    if config.needs_training() {
                        config.build_any_trained(&training)
                    } else {
                        config.build_any().expect("builds")
                    }
                })
                .collect();

            for mode in KERNELS {
                let in_memory = simulate_replay_transposed(&predictors, &stream, mode)
                    .expect("structures are replay-eligible");
                let mut cursor = StreamCursor::open(&path, &key.to_bytes(), 1 << 20, &window)
                    .expect("persisted stream opens");
                let streamed = simulate_replay_transposed_streamed(&predictors, &mut cursor, mode)
                    .expect("structures are replay-eligible")
                    .expect("persisted stream is intact");
                assert_eq!(
                    streamed, in_memory,
                    "streamed vs in-memory diverged for {structure} batch on {trace_name} \
                     under {mode:?}"
                );
            }
        }
    }
    assert_eq!(window.current(), 0, "every chunk lease must be released");
    let _ = std::fs::remove_dir_all(&dir);
}

/// A stream more than four times the configured window replays entirely
/// within the window: the cursor's bounded ring caps resident bytes at
/// the requested budget while the results stay bit-identical to the
/// hydrated walk.
#[test]
fn capped_window_bounds_resident_bytes_on_a_large_stream() {
    let dir = scratch("capped");
    let path = dir.join("large.tlabp");

    // A synthetic laned stream big enough to dwarf the window: 48 replay
    // blocks (~6 MiB resident at 8 bytes/event).
    let events = 48 * (1 << 14);
    let mut stream = PatternStream::new(10, true);
    let mut state = 0x2468ace0u32;
    for _ in 0..events {
        // xorshift: a pattern walk with no short period, so chunks differ.
        state ^= state << 13;
        state ^= state >> 17;
        state ^= state << 5;
        stream.push_with_lane((state & 0x3ff) as usize, state & 0x8000 != 0, state % 7);
    }
    let key = replay_stream_key(SchemeConfig::pap(10)).expect("PAp(10) replays");
    let bytes =
        write_artifacts_chunked(0, None, None, None, &[(key.to_bytes(), &stream)], 16 << 10);
    std::fs::write(&path, bytes).expect("artifact writes");

    let predictors: Vec<_> = Automaton::FIGURE5
        .iter()
        .map(|&automaton| {
            SchemeConfig::pap(10).with_automaton(automaton).build_any().expect("builds")
        })
        .collect();
    let reference =
        simulate_replay_transposed(&predictors, &stream, SimdMode::Swar).expect("replays");

    let resident = stream.bytes();
    let cap = resident / 4;
    let window = Arc::new(StreamWindow::new());
    let mut cursor =
        StreamCursor::open(&path, &key.to_bytes(), cap, &window).expect("stream opens");
    assert!(cursor.chunks() >= 4, "fixture must span several chunks");
    let streamed = simulate_replay_transposed_streamed(&predictors, &mut cursor, SimdMode::Swar)
        .expect("replays")
        .expect("artifact is intact");
    assert_eq!(streamed, reference, "capped streaming changed results");
    assert!(
        window.peak() <= cap,
        "peak residency {} exceeded the {cap}-byte window on a {resident}-byte stream",
        window.peak()
    );
    assert!(window.peak() > 0, "the gauge must have seen the walk");
    drop(cursor);
    assert_eq!(window.current(), 0, "every chunk lease must be released");
    let _ = std::fs::remove_dir_all(&dir);
}

/// The store-level round trip: a pattern stream persisted by a
/// disk-backed [`TraceStore`] is streamable back through
/// [`TraceStore::open_stream_cursor`], the probe
/// [`TraceStore::stream_on_disk`] sees it, the streamed walk matches the
/// hydrated one, and the store's window gauge drains to zero afterwards.
#[test]
fn store_persisted_streams_replay_identically_through_the_cursor() {
    let dir = scratch("store");
    let store = TraceStore::with_cache_dir(&dir);
    let benchmark = Benchmark::by_name("li").expect("li exists");
    let config = SchemeConfig::pag(12);
    let key = replay_stream_key(config).expect("PAg(12) replays");

    assert!(!store.stream_on_disk(benchmark, DataSet::Testing, key), "nothing persisted yet");
    let stream = store.get_pattern_stream(benchmark, DataSet::Testing, key);
    assert!(
        store.stream_on_disk(benchmark, DataSet::Testing, key),
        "deriving the stream must persist a streamable v3 section"
    );

    let predictors: Vec<_> = Automaton::FIGURE5
        .iter()
        .map(|&automaton| config.with_automaton(automaton).build_any().expect("builds"))
        .collect();
    let hydrated =
        simulate_replay_transposed(&predictors, &stream, SimdMode::Auto).expect("replays");

    let mut cursor = store
        .open_stream_cursor(benchmark, DataSet::Testing, key, 1 << 20)
        .expect("persisted artifact streams");
    let streamed = simulate_replay_transposed_streamed(&predictors, &mut cursor, SimdMode::Auto)
        .expect("replays")
        .expect("artifact is intact");
    assert_eq!(streamed, hydrated, "store cursor diverged from the hydrated stream");
    drop(cursor);
    assert_eq!(
        store.cache_bytes().stream_window,
        0,
        "the streaming window must drain once cursors are gone"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Importing the same TLBE capture is deterministic (byte-identical
/// artifacts), round-trips the trace exactly, and the imported interned
/// form replays identically streamed and hydrated — the full external
/// ingestion path of `experiments import`.
#[test]
fn imported_captures_are_deterministic_and_replay_identically() {
    use tlabp::trace::import::{import_artifacts, write_etrace};
    use tlabp::trace::io::read_artifacts;

    let dir = scratch("import");
    let capture = write_etrace(&LoopNest::new(&[23, 17, 5]).generate());

    let (fingerprint, artifact) = import_artifacts(&capture, 1 << 12).expect("capture imports");
    let again = import_artifacts(&capture, 1 << 12).expect("capture imports");
    assert_eq!(again, (fingerprint, artifact.clone()), "import must be deterministic");

    let bundle = read_artifacts(&artifact).expect("imported artifact decodes");
    assert_eq!(bundle.fingerprint, fingerprint);
    assert_eq!(
        bundle.trace.as_ref().expect("trace section"),
        &LoopNest::new(&[23, 17, 5]).generate()
    );

    // Derive a stream from the imported interned form, persist, and pin
    // streamed == hydrated over the imported workload too.
    let interned = bundle.interned.expect("interned section");
    let config = SchemeConfig::pag(8);
    let key = replay_stream_key(config).expect("PAg(8) replays");
    let stream = derive_pattern_stream(&interned, key);
    let path = dir.join("imported-stream.tlabp");
    persist_stream(&path, key, &stream);

    let predictors = vec![config.build_any().expect("builds")];
    let hydrated =
        simulate_replay_transposed(&predictors, &stream, SimdMode::Swar).expect("replays");
    let window = Arc::new(StreamWindow::new());
    let mut cursor =
        StreamCursor::open(&path, &key.to_bytes(), 1 << 20, &window).expect("stream opens");
    let streamed = simulate_replay_transposed_streamed(&predictors, &mut cursor, SimdMode::Swar)
        .expect("replays")
        .expect("artifact is intact");
    assert_eq!(streamed, hydrated, "imported workload diverged streamed vs hydrated");
    let _ = std::fs::remove_dir_all(&dir);
}
