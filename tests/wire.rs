//! Satellite: property tests for the service wire formats.
//!
//! Three layers are pinned from the outside: the canonical
//! [`Plan`]/[`ResultSet`] JSON codecs (random plans round-trip
//! losslessly and re-render byte-identically), the frame envelope (every
//! truncation and every byte substitution of a valid frame is rejected,
//! version skew is named as such), and the memo-key property that the
//! daemon's cache correctness rests on (equal plans ⇔ equal canonical
//! encodings ⇔ equal hashes).

use tlabp::core::automaton::Automaton;
use tlabp::core::bht::BhtConfig;
use tlabp::core::config::SchemeConfig;
use tlabp::service::proto::{
    decode_frame, encode_frame, parse_result_payload, result_payload, FrameError, FrameKind,
};
use tlabp::sim::plan::{Job, MetricSet, Plan, TargetCacheSpec};
use tlabp::sim::runner::SimConfig;
use tlabp::sim::JobOutcome;
use tlabp::trace::rng::SmallRng;
use tlabp::workloads::{Benchmark, DataSet};

/// Draws one random-but-valid job: any catalog scheme or a custom name,
/// any benchmark/data-set pair that exists, any sim/metric/engine
/// options. The space deliberately covers every optional field of the
/// wire form.
fn random_job(rng: &mut SmallRng) -> Job {
    let benchmark = &Benchmark::ALL[rng.next_below(Benchmark::ALL.len() as u64) as usize];
    let config = match rng.next_below(8) {
        0 => SchemeConfig::gag(6 + rng.next_below(12) as u32),
        1 => SchemeConfig::pag(4 + rng.next_below(10) as u32),
        2 => SchemeConfig::pap(4 + rng.next_below(8) as u32),
        3 => SchemeConfig::gsg(8 + rng.next_below(10) as u32),
        4 => SchemeConfig::psg(8 + rng.next_below(6) as u32),
        5 => SchemeConfig::btb(Automaton::A2),
        6 => SchemeConfig::btfn(),
        _ => SchemeConfig::profiling(),
    };
    let config = match rng.next_below(4) {
        0 => config.with_bht(BhtConfig::Ideal),
        1 => config.with_bht(BhtConfig::Cache {
            entries: 1 << (6 + rng.next_below(4)),
            ways: 1 << rng.next_below(3),
        }),
        _ => config,
    };
    let config = config.with_context_switch(rng.random_bool(0.3));
    // The wire encoding for a scheme IS the Table 3 notation, which
    // normalizes combinations that make no sense for a kind (a BHT on
    // BTFN, say). Normalize through the notation so the drawn config is
    // exactly what any decoder can reconstruct.
    let config: SchemeConfig = config.to_string().parse().expect("generated notation parses back");
    let mut job = if rng.random_bool(0.15) {
        Job::custom(format!("custom-{}", rng.next_below(1000)), benchmark)
    } else {
        Job::scheme(config, benchmark)
    };
    if benchmark.has_training_set() && rng.random_bool(0.2) {
        job.trace.data_set = DataSet::Training;
    }
    if rng.random_bool(0.3) {
        job = job.with_sim(SimConfig::paper_context_switch());
    }
    if rng.random_bool(0.25) {
        job = job.with_metrics(MetricSet {
            miss_breakdown: rng.random_bool(0.5),
            fetch: rng.random_bool(0.5).then_some(TargetCacheSpec { entries: 256, ways: 2 }),
        });
    }
    if rng.random_bool(0.2) {
        job = job.with_fusion(false);
    }
    if rng.random_bool(0.2) {
        job = job.with_replay(false);
    }
    job
}

fn random_plan(rng: &mut SmallRng, max_jobs: u64) -> Plan {
    (0..rng.next_below(max_jobs + 1)).map(|_| random_job(rng)).collect()
}

/// Random plans survive encode → decode → re-encode with byte equality,
/// and the wire hash is a function of the canonical text alone.
#[test]
fn random_plans_round_trip_canonically() {
    let mut rng = SmallRng::seed_from_u64(0x7ab5_1e55);
    for _ in 0..200 {
        let plan = random_plan(&mut rng, 12);
        let text = plan.to_json_string();
        let back = Plan::from_json_str(&text).expect("canonical text decodes");
        assert_eq!(back, plan, "decode must reconstruct every job field");
        assert_eq!(back.to_json_string(), text, "re-encode must be byte-identical");
        assert_eq!(back.wire_hash(), plan.wire_hash());
    }
}

/// The memo-key property: two plans share a canonical encoding (and
/// hash) iff they are equal; a one-field perturbation changes both.
#[test]
fn canonical_encoding_separates_distinct_plans() {
    let mut rng = SmallRng::seed_from_u64(0xd15_7a9c);
    for _ in 0..100 {
        let mut plan = random_plan(&mut rng, 8);
        if plan.is_empty() {
            continue;
        }
        let text = plan.to_json_string();
        let hash = plan.wire_hash();
        // Perturb one job's fuse flag — the smallest possible change.
        let victim = rng.next_below(plan.len() as u64) as usize;
        let jobs: Vec<Job> = plan
            .jobs()
            .iter()
            .enumerate()
            .map(|(i, job)| {
                let mut job = job.clone();
                if i == victim {
                    job.fuse = !job.fuse;
                }
                job
            })
            .collect();
        plan = jobs.into_iter().collect();
        assert_ne!(plan.to_json_string(), text, "distinct plans must encode distinctly");
        assert_ne!(plan.wire_hash(), hash, "distinct plans must hash distinctly");
    }
}

/// Every prefix truncation of a valid frame fails to decode — a client
/// can never mistake a torn line for a complete response.
#[test]
fn truncated_frames_are_rejected_at_every_boundary() {
    let mut rng = SmallRng::seed_from_u64(0x0dd_ba11);
    let plan = random_plan(&mut rng, 6);
    let frames = [
        encode_frame(FrameKind::Plan, &plan.to_json_string()),
        encode_frame(
            FrameKind::Result,
            &result_payload(3, &JobOutcome::Skipped { reason: "spaces matter here".into() }),
        ),
    ];
    for frame in &frames {
        assert!(decode_frame(frame).is_ok());
        for cut in 0..frame.len() {
            if !frame.is_char_boundary(cut) {
                continue;
            }
            assert!(
                decode_frame(&frame[..cut]).is_err(),
                "prefix of length {cut} of {frame:?} must not decode"
            );
        }
    }
}

/// Every single-byte substitution of a valid frame is rejected: either
/// the envelope breaks (magic/version/kind/length) or the checksum
/// catches the payload flip. No corruption decodes silently to a
/// *different* payload.
#[test]
fn corrupted_frames_never_decode_to_different_payloads() {
    let original_payload = result_payload(7, &JobOutcome::Skipped { reason: "x".into() });
    let frame = encode_frame(FrameKind::Result, &original_payload);
    let bytes = frame.as_bytes();
    for position in 0..bytes.len() {
        for replacement in [b'0', b'z', b' ', b'"'] {
            if bytes[position] == replacement {
                continue;
            }
            let mut corrupted = bytes.to_vec();
            corrupted[position] = replacement;
            let Ok(corrupted) = String::from_utf8(corrupted) else { continue };
            if let Ok((kind, payload)) = decode_frame(&corrupted) {
                // The only tolerated decodes are ones that preserve the
                // message exactly (e.g. flipping a checksum hex digit to
                // itself is skipped above, so nothing should land here).
                assert_eq!(
                    (kind, payload),
                    (FrameKind::Result, original_payload.as_str()),
                    "byte {position} -> {replacement:?} decoded to a different message"
                );
                panic!("byte {position} -> {replacement:?} still decoded: {corrupted:?}");
            }
        }
    }
}

/// Version skew is reported as version skew — not as a checksum or
/// length error — for both the frame envelope and the plan payload.
#[test]
fn version_mismatches_are_named() {
    let plan: Plan = [Job::scheme(SchemeConfig::pag(8), &Benchmark::ALL[0])].into_iter().collect();
    let good = encode_frame(FrameKind::Plan, &plan.to_json_string());

    let skewed = good.replacen("TLBS 1 ", "TLBS 99 ", 1);
    assert_eq!(
        decode_frame(&skewed),
        Err(FrameError::BadVersion { found: "99".to_owned() }),
        "envelope version skew must be identified"
    );

    let payload_skew = plan.to_json_string().replacen("\"version\":1", "\"version\":2", 1);
    let err = Plan::from_json_str(&payload_skew).expect_err("future plan version must not decode");
    assert!(err.to_string().contains("version"), "error names the version field: {err}");
}

/// Result payloads round-trip through the frame layer: what the server
/// streams is exactly what the client reconstructs.
#[test]
fn result_payloads_round_trip_through_frames() {
    let outcomes = [
        JobOutcome::Skipped { reason: "profiling needs a training set".into() },
        JobOutcome::Skipped { reason: String::new() },
    ];
    for (index, outcome) in outcomes.iter().enumerate() {
        let frame = encode_frame(FrameKind::Result, &result_payload(index, outcome));
        let (kind, payload) = decode_frame(&frame).expect("frame decodes");
        assert_eq!(kind, FrameKind::Result);
        let (back_index, back) = parse_result_payload(payload).expect("payload parses");
        assert_eq!(back_index, index);
        assert_eq!(&back, outcome);
    }
}
