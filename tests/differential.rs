//! Differential tests pinning the fast simulation paths to the
//! reference path.
//!
//! The sweep engine runs cells through a monomorphized
//! [`AnyPredictor`] and, without context switches, over the packed
//! conditional-branch stream — and fuses packed-path jobs that share a
//! trace into batched passes over the pc-interned stream. None of these
//! transformations may change a single prediction: for every scheme in
//! the catalog, the boxed `dyn BranchPredictor` over the full trace,
//! the `AnyPredictor` over the full trace, the `AnyPredictor` over the
//! packed stream, and the fused batch over the interned stream must
//! produce identical [`SimResult`]s.

use tlabp::core::automaton::Automaton;
use tlabp::core::config::SchemeConfig;
use tlabp::core::BhtConfig;
use tlabp::sim::runner::{simulate, simulate_packed, SimConfig};
use tlabp::sim::SimResult;
use tlabp::trace::synth::{BiasedCoins, CorrelatedBranches, Correlation, LoopNest, MarkovBranches};
use tlabp::trace::Trace;
use tlabp::workloads::{Benchmark, DataSet};

/// Every scheme kind the simulator supports, across automata, history
/// lengths and BHT geometries (a superset of the paper's Table 3 axes).
fn catalog() -> Vec<SchemeConfig> {
    let mut configs = vec![
        SchemeConfig::gag(6),
        SchemeConfig::gag(12).with_automaton(Automaton::LastTime),
        SchemeConfig::gag(18).with_automaton(Automaton::A4),
        SchemeConfig::pag(8),
        SchemeConfig::pag(12).with_automaton(Automaton::A3),
        SchemeConfig::pag(10).with_bht(BhtConfig::Cache { entries: 256, ways: 1 }),
        SchemeConfig::pag(12).with_bht(BhtConfig::Ideal),
        SchemeConfig::pap(6),
        SchemeConfig::pap(8).with_bht(BhtConfig::Ideal),
        SchemeConfig::gsg(12),
        SchemeConfig::psg(12),
        SchemeConfig::btb(Automaton::A2),
        SchemeConfig::btb(Automaton::LastTime),
        SchemeConfig::always_taken(),
        SchemeConfig::btfn(),
        SchemeConfig::profiling(),
    ];
    // The same axes with the context-switch flag set.
    for config in configs.clone() {
        configs.push(config.with_context_switch(true));
    }
    configs
}

fn traces() -> Vec<(&'static str, Trace)> {
    vec![
        ("loop_nest", LoopNest::new(&[40, 11, 3]).generate()),
        ("biased_coins", BiasedCoins::uniform(24, 0.7, 400, 7).generate()),
        ("correlated", CorrelatedBranches::new(Correlation::Xor, 2000, 0.5, 11).generate()),
        ("markov", MarkovBranches::new(16, 0.85, 3000, 23).generate()),
        ("li_testing", Benchmark::by_name("li").expect("li exists").trace(DataSet::Testing)),
    ]
}

fn run_all_paths(
    config: &SchemeConfig,
    trace: &Trace,
    training: &Trace,
    sim: &SimConfig,
) -> (SimResult, SimResult, Option<SimResult>) {
    let mut boxed = if config.needs_training() {
        config.build_trained(training)
    } else {
        config.build().expect("builds")
    };
    let mut any = if config.needs_training() {
        config.build_any_trained(training)
    } else {
        config.build_any().expect("builds")
    };
    let dyn_result = simulate(&mut *boxed, trace, sim);
    let any_result = simulate(&mut any, trace, sim);
    let packed_result = if sim.context_switch.is_none() {
        let mut any = if config.needs_training() {
            config.build_any_trained(training)
        } else {
            config.build_any().expect("builds")
        };
        Some(simulate_packed(&mut any, &trace.pack_conditionals()))
    } else {
        None
    };
    (dyn_result, any_result, packed_result)
}

/// The monomorphized and packed paths are bit-identical to the boxed
/// reference for every catalog scheme on every trace, with and without
/// context-switch simulation.
#[test]
fn every_catalog_scheme_is_path_invariant() {
    let training = BiasedCoins::uniform(24, 0.7, 400, 8).generate();
    for (trace_name, trace) in traces() {
        for config in catalog() {
            let sim = if config.context_switch() {
                SimConfig::paper_context_switch()
            } else {
                SimConfig::no_context_switch()
            };
            let (dyn_result, any_result, packed_result) =
                run_all_paths(&config, &trace, &training, &sim);
            assert_eq!(
                dyn_result, any_result,
                "dyn vs AnyPredictor diverged for {config} on {trace_name}"
            );
            if let Some(packed_result) = packed_result {
                assert_eq!(
                    dyn_result, packed_result,
                    "dyn vs packed diverged for {config} on {trace_name}"
                );
            }
        }
    }
}

/// The execution engine's three lowerings agree job-for-job: a scheme
/// job on the fast path, the same scheme forced onto the reference path,
/// and the same predictor entering as a registry-built custom job (the
/// `AnyPredictor::Dyn` escape hatch) all produce identical accuracy
/// counters.
#[test]
fn engine_paths_agree_for_every_lowering() {
    use tlabp::core::registry;
    use tlabp::sim::engine::execute;
    use tlabp::sim::plan::{Job, Plan};
    use tlabp::sim::TraceStore;

    let li = Benchmark::by_name("li").expect("li exists");
    let configs = [SchemeConfig::pag(8), SchemeConfig::gag(10).with_automaton(Automaton::A3)];
    for config in configs {
        let name = format!("differential-dyn-{config}");
        registry::register(&name, move || Box::new(config.build_any().expect("builds")));
        let plan: Plan = [
            Job::scheme(config, li),
            Job::scheme(config, li).with_reference_path(true),
            Job::custom(name.clone(), li),
        ]
        .into_iter()
        .collect();
        let results = execute(&plan, &TraceStore::from_env());
        let sims: Vec<&SimResult> =
            results.iter().map(|(_, outcome)| &outcome.metrics().expect("measured").sim).collect();
        assert_eq!(sims[0], sims[1], "fast vs reference diverged for {config}");
        assert_eq!(sims[0], sims[2], "fast vs dyn diverged for {config}");
    }
}

/// Fusion is invisible: for every catalog scheme — including the
/// context-switch variants, which are fusion-ineligible and must fall
/// back to per-cell execution inside a fused plan — a fused plan, the
/// same plan with fusion disabled, and the same plan forced onto the
/// reference path produce identical outcomes job for job: measured
/// counters and skip reasons alike.
#[test]
fn fused_per_cell_and_reference_plans_agree_job_for_job() {
    use tlabp::sim::engine::execute;
    use tlabp::sim::plan::{Job, Plan};
    use tlabp::sim::TraceStore;

    let li = Benchmark::by_name("li").expect("li exists");
    let eqntott = Benchmark::by_name("eqntott").expect("eqntott exists");
    let mut jobs: Vec<Job> = catalog().into_iter().map(|config| Job::scheme(config, li)).collect();
    // eqntott has no training set: profiled schemes must skip (with the
    // same reason) on every path, alongside fusible neighbors.
    jobs.extend(
        [SchemeConfig::profiling(), SchemeConfig::gsg(12), SchemeConfig::pag(8)]
            .map(|config| Job::scheme(config, eqntott)),
    );

    let store = TraceStore::from_env();
    let fused: Plan = jobs.iter().cloned().collect();
    let per_cell: Plan = jobs.iter().map(|job| job.clone().with_fusion(false)).collect();
    let reference: Plan = jobs.iter().map(|job| job.clone().with_reference_path(true)).collect();

    let fused_out = execute(&fused, &store);
    let cell_out = execute(&per_cell, &store);
    let reference_out = execute(&reference, &store);
    for (index, job) in jobs.iter().enumerate() {
        let label = job.label();
        let benchmark = job.trace.benchmark.name();
        assert_eq!(
            fused_out.outcome(index),
            cell_out.outcome(index),
            "fused vs per-cell diverged for {label} on {benchmark}"
        );
        assert_eq!(
            fused_out.outcome(index),
            reference_out.outcome(index),
            "fused vs reference diverged for {label} on {benchmark}"
        );
    }
}

/// A fused batch's composition never affects its members: every catalog
/// scheme measured alone in its own single-job fused plan matches the
/// outcome it gets inside the all-schemes fused plan (where it shares
/// batches with 15 other predictors).
#[test]
fn fused_outcomes_are_independent_of_batch_composition() {
    use tlabp::sim::engine::execute;
    use tlabp::sim::plan::{Job, Plan};
    use tlabp::sim::TraceStore;

    let li = Benchmark::by_name("li").expect("li exists");
    // The no-switch half of the catalog: every scheme that actually
    // lowers to the fusible packed path.
    let fusible: Vec<SchemeConfig> =
        catalog().into_iter().filter(|config| !config.context_switch()).collect();
    let store = TraceStore::from_env();
    let multi: Plan = fusible.iter().map(|&config| Job::scheme(config, li)).collect();
    let multi_out = execute(&multi, &store);
    for (index, &config) in fusible.iter().enumerate() {
        let single: Plan = [Job::scheme(config, li)].into_iter().collect();
        let single_out = execute(&single, &store);
        assert_eq!(
            multi_out.outcome(index),
            single_out.outcome(0),
            "{config} outcome depends on its batch"
        );
    }
}

/// Every replay-eligible scheme structure crossed with every automaton
/// (Last-Time and the four-state counters via `with_automaton`, the
/// PresetBit 2-state packing via the trained GSg/PSg schemes): replaying
/// the materialized pattern stream through the bit-packed PHT is
/// bit-identical to the packed fast path and to the boxed reference on
/// every trace.
#[test]
fn replay_is_bit_identical_for_every_scheme_and_automaton() {
    use tlabp::core::SimdMode;
    use tlabp::sim::runner::{
        derive_pattern_stream, replay_stream_key, simulate_replay, simulate_replay_transposed,
    };
    use tlabp::trace::InternedConds;

    let structures = [
        SchemeConfig::gag(8),
        SchemeConfig::pag(8),
        SchemeConfig::pag(10).with_bht(BhtConfig::Cache { entries: 256, ways: 1 }),
        SchemeConfig::pag(12).with_bht(BhtConfig::Ideal),
        SchemeConfig::pap(6),
    ];
    let mut configs: Vec<SchemeConfig> = structures
        .iter()
        .flat_map(|&config| {
            Automaton::FIGURE5.iter().map(move |&automaton| config.with_automaton(automaton))
        })
        .collect();
    configs.extend([SchemeConfig::gsg(12), SchemeConfig::psg(12)]);

    let training = BiasedCoins::uniform(24, 0.7, 400, 8).generate();
    let sim = SimConfig::no_context_switch();
    for (trace_name, trace) in traces() {
        let interned = InternedConds::from_trace(&trace);
        for &config in &configs {
            let key = replay_stream_key(config).expect("catalog scheme has a stream key");
            let stream = derive_pattern_stream(&interned, key);
            let predictor = if config.needs_training() {
                config.build_any_trained(&training)
            } else {
                config.build_any().expect("builds")
            };
            let replayed =
                simulate_replay(&predictor, &stream).expect("catalog scheme has a replay PHT");

            // Every body of the transposed SWAR kernel reproduces the
            // sequential replay bit for bit — scheme × automaton × trace.
            for mode in
                [SimdMode::Swar, SimdMode::Scalar, SimdMode::Sse2, SimdMode::Avx2, SimdMode::Avx512]
            {
                let member = if config.needs_training() {
                    config.build_any_trained(&training)
                } else {
                    config.build_any().expect("builds")
                };
                let transposed = simulate_replay_transposed(&[member], &stream, mode)
                    .expect("catalog scheme has a replay PHT");
                assert_eq!(
                    transposed[0], replayed,
                    "transposed {mode:?} vs replay diverged for {config} on {trace_name}"
                );
            }

            let mut packed = if config.needs_training() {
                config.build_any_trained(&training)
            } else {
                config.build_any().expect("builds")
            };
            let packed_result = simulate_packed(&mut packed, &trace.pack_conditionals());
            assert_eq!(
                replayed, packed_result,
                "replay vs packed diverged for {config} on {trace_name}"
            );

            let mut boxed = if config.needs_training() {
                config.build_trained(&training)
            } else {
                config.build().expect("builds")
            };
            let dyn_result = simulate(&mut *boxed, &trace, &sim);
            assert_eq!(
                replayed, dyn_result,
                "replay vs reference diverged for {config} on {trace_name}"
            );
        }
    }
}

/// The engine's replay lowering is invisible: the default plan (replay
/// on), the same plan with replay disabled (fused execution), and the
/// same plan forced onto the reference path produce identical outcomes
/// job for job — including the profiled schemes that skip benchmarks
/// without training sets.
#[test]
fn replay_fused_and_reference_plans_agree_job_for_job() {
    use tlabp::sim::engine::execute;
    use tlabp::sim::plan::{Job, Plan};
    use tlabp::sim::TraceStore;

    let li = Benchmark::by_name("li").expect("li exists");
    let eqntott = Benchmark::by_name("eqntott").expect("eqntott exists");
    let mut jobs: Vec<Job> = catalog().into_iter().map(|config| Job::scheme(config, li)).collect();
    jobs.extend(
        [SchemeConfig::psg(12), SchemeConfig::gsg(12), SchemeConfig::pag(8)]
            .map(|config| Job::scheme(config, eqntott)),
    );

    let store = TraceStore::from_env();
    let replay: Plan = jobs.iter().cloned().collect();
    let fused: Plan = jobs.iter().map(|job| job.clone().with_replay(false)).collect();
    let reference: Plan = jobs.iter().map(|job| job.clone().with_reference_path(true)).collect();

    let replay_out = execute(&replay, &store);
    let fused_out = execute(&fused, &store);
    let reference_out = execute(&reference, &store);
    for (index, job) in jobs.iter().enumerate() {
        let label = job.label();
        let benchmark = job.trace.benchmark.name();
        assert_eq!(
            replay_out.outcome(index),
            fused_out.outcome(index),
            "replay vs fused diverged for {label} on {benchmark}"
        );
        assert_eq!(
            replay_out.outcome(index),
            reference_out.outcome(index),
            "replay vs reference diverged for {label} on {benchmark}"
        );
    }
}

/// The bit-packed PHT's lookup table agrees with `Automaton::update` and
/// `Automaton::predict` on all 256 (state, taken) inputs, for every
/// automaton — including the 2-state Last-Time and PresetBit packings,
/// whose stored state is the masked low bit of the index.
#[test]
fn packed_lut_matches_automaton_on_all_256_inputs() {
    use tlabp::core::automaton::State;

    for automaton in Automaton::ALL {
        let lut = automaton.packed_lut();
        let mask = automaton.state_count() - 1;
        for (index, &entry) in lut.iter().enumerate() {
            let taken = index & 1 != 0;
            let state = State::new(((index >> 1) as u8) & mask);
            assert_eq!(
                entry & 0b11,
                automaton.update(state, taken).value(),
                "{automaton} next state diverged at index {index}"
            );
            assert_eq!(
                entry & 0b100 != 0,
                automaton.predict(state),
                "{automaton} prediction diverged at index {index}"
            );
        }
    }
}

/// Every body of the transposed SWAR kernel — portable u64, forced
/// SSE2/AVX2, and the scalar transposed loop — agrees with
/// `Automaton::update` / `Automaton::predict` on all 256 (state, taken)
/// transition inputs, for every automaton: a one-member bank stepped
/// through each input singly must land in the reference next state and
/// count the reference correctness, under every `TLABP_SIMD` mode.
#[test]
fn transposed_kernels_match_automaton_on_all_256_inputs() {
    use tlabp::core::automaton::State;
    use tlabp::core::pht::{PackedPht, TransposedPhtBank};
    use tlabp::core::SimdMode;

    for automaton in Automaton::ALL {
        let mask = automaton.state_count() - 1;
        for index in 0..256usize {
            let taken = index & 1 != 0;
            let state = State::new(((index >> 1) as u8) & mask);
            for mode in [
                SimdMode::Auto,
                SimdMode::Swar,
                SimdMode::Scalar,
                SimdMode::Sse2,
                SimdMode::Avx2,
                SimdMode::Avx512,
            ] {
                let mut table = PackedPht::new(1, automaton);
                table.set_state(0, state);
                table.set_state(1, state);
                let mut bank = TransposedPhtBank::new(&[table]);
                bank.replay(&[u32::from(taken)], mode);
                assert_eq!(
                    bank.state(0, 0),
                    automaton.update(state, taken),
                    "{automaton} next state diverged at index {index} under {mode:?}"
                );
                assert_eq!(
                    bank.counts()[0],
                    u64::from(automaton.predict(state) == taken),
                    "{automaton} correctness diverged at index {index} under {mode:?}"
                );
            }
        }
    }
}

/// The full grid plan — every (scheme, width, automaton) cell of the
/// Fig. 8 design-space artifact, where the engine's fold grouping packs
/// entire width × automaton columns into single transposed batches over
/// one shared stream — is lowering-invariant: the SWAR kernel, the
/// scalar kernel, the auto-detected kernel and fused execution with
/// replay disabled all agree job for job.
#[test]
fn grid_plan_is_invariant_across_replay_kernels_and_fusion() {
    use tlabp::core::SimdMode;
    use tlabp::sim::engine::{execute, execute_with, ExecOptions};
    use tlabp::sim::plan::{Job, Plan};
    use tlabp::sim::{SweepPool, TraceStore};

    let benchmarks =
        [Benchmark::by_name("li").expect("li exists"), Benchmark::by_name("eqntott").unwrap()];
    let schemes: [fn(u32) -> SchemeConfig; 3] =
        [SchemeConfig::gag, SchemeConfig::pag, SchemeConfig::pap];
    let mut jobs: Vec<Job> = Vec::new();
    for benchmark in benchmarks {
        for scheme in schemes {
            for width in [4u32, 6, 8, 10, 12] {
                for &automaton in &Automaton::FIGURE5 {
                    jobs.push(Job::scheme(scheme(width).with_automaton(automaton), benchmark));
                }
            }
        }
    }
    let plan: Plan = jobs.iter().cloned().collect();
    let fused: Plan = jobs.iter().map(|job| job.clone().with_replay(false)).collect();

    let store = TraceStore::from_env();
    let auto = execute(&plan, &store);
    let fused_out = execute(&fused, &store);
    let kernel = |simd| {
        execute_with(
            SweepPool::global(),
            &plan,
            &store,
            ExecOptions { simd, ..ExecOptions::default() },
        )
    };
    let swar = kernel(SimdMode::Swar);
    let scalar = kernel(SimdMode::Scalar);
    for (index, job) in jobs.iter().enumerate() {
        let label = job.label();
        let benchmark = job.trace.benchmark.name();
        assert_eq!(
            swar.outcome(index),
            scalar.outcome(index),
            "swar vs scalar diverged for {label} on {benchmark}"
        );
        assert_eq!(
            swar.outcome(index),
            auto.outcome(index),
            "swar vs auto diverged for {label} on {benchmark}"
        );
        assert_eq!(
            swar.outcome(index),
            fused_out.outcome(index),
            "swar vs fused diverged for {label} on {benchmark}"
        );
    }
}

/// Intra-batch splitting is invisible for every scheme structure and
/// automaton: a plan whose width × automaton columns fold into wide
/// replay batches produces bit-identical outcomes whether each batch
/// runs whole on one worker or is scattered word-by-word across the
/// pool — under the auto split heuristic and under forced part counts
/// far above and below the atom supply.
#[test]
fn split_replay_matches_unsplit_for_every_scheme_and_automaton() {
    use tlabp::core::SimdMode;
    use tlabp::sim::engine::{execute_with, ExecOptions, SplitPolicy};
    use tlabp::sim::plan::{Job, Plan};
    use tlabp::sim::{SweepPool, TraceStore};

    let benchmark = Benchmark::by_name("li").expect("li exists");
    let schemes: [fn(u32) -> SchemeConfig; 3] =
        [SchemeConfig::gag, SchemeConfig::pag, SchemeConfig::pap];
    let mut jobs: Vec<Job> = Vec::new();
    for scheme in schemes {
        for width in [6u32, 8] {
            for automaton in Automaton::ALL {
                jobs.push(Job::scheme(scheme(width).with_automaton(automaton), benchmark));
            }
        }
    }
    let plan: Plan = jobs.iter().cloned().collect();

    let store = TraceStore::new();
    let pool = SweepPool::new(2);
    let run = |split| {
        execute_with(
            &pool,
            &plan,
            &store,
            ExecOptions { simd: SimdMode::Auto, split, ..ExecOptions::default() },
        )
    };
    let unsplit = run(SplitPolicy::Off);
    for split in [SplitPolicy::Auto, SplitPolicy::Parts(2), SplitPolicy::Parts(64)] {
        let split_out = run(split);
        for (index, job) in jobs.iter().enumerate() {
            assert_eq!(
                unsplit.outcome(index),
                split_out.outcome(index),
                "{split:?} diverged from unsplit for {}",
                job.label()
            );
        }
    }
}

/// The packed stream itself is lossless for prediction: pc, direction
/// and backwardness survive the 8-byte encoding.
#[test]
fn packed_records_preserve_prediction_inputs() {
    for (trace_name, trace) in traces() {
        let packed = trace.pack_conditionals();
        let originals: Vec<_> = trace.conditional_branches().collect();
        assert_eq!(packed.len(), originals.len(), "{trace_name}");
        for (cond, original) in packed.iter().zip(originals) {
            let rebuilt = cond.to_record();
            assert_eq!(rebuilt.pc, original.pc, "{trace_name}");
            assert_eq!(rebuilt.taken, original.taken, "{trace_name}");
            assert_eq!(rebuilt.is_backward(), original.is_backward(), "{trace_name}");
        }
    }
}
