//! Property-style tests over the core data structures and the
//! cross-crate trace formats.
//!
//! Originally written with proptest; rewritten as seeded randomized
//! loops on the in-tree [`SmallRng`] so the tier-1 suite builds with no
//! external dependencies. Each property runs a fixed number of cases
//! from a fixed seed, so failures reproduce exactly.

use tlabp::core::automaton::{Automaton, State};
use tlabp::core::config::SchemeConfig;
use tlabp::core::history::HistoryRegister;
use tlabp::core::predictor::BranchPredictor;
use tlabp::core::schemes::Gag;
use tlabp::core::speculative::{HistoryUpdatePolicy, MispredictRepair, SpeculativeGag};
use tlabp::core::{Automaton as Atm, BhtConfig};
use tlabp::trace::io::{read_trace, write_trace};
use tlabp::trace::rng::SmallRng;
use tlabp::trace::{BranchClass, BranchRecord, Trace, TrapRecord};

const CASES: u64 = 64;

fn random_outcomes(rng: &mut SmallRng) -> Vec<bool> {
    let len = rng.next_range(1, 200) as usize;
    (0..len).map(|_| rng.random_bool(0.5)).collect()
}

fn random_automaton(rng: &mut SmallRng) -> Automaton {
    Automaton::ALL[rng.next_below(Automaton::ALL.len() as u64) as usize]
}

/// Automaton updates always stay inside the automaton's state space and
/// predictions are a pure function of the state.
#[test]
fn automata_are_closed_and_deterministic() {
    let mut rng = SmallRng::seed_from_u64(0xA001);
    for _ in 0..CASES {
        let automaton = random_automaton(&mut rng);
        let mut state = automaton.initial_state();
        for taken in random_outcomes(&mut rng) {
            assert!(automaton.is_valid_state(state));
            assert_eq!(automaton.predict(state), automaton.predict(state));
            state = automaton.update(state, taken);
        }
        assert!(automaton.is_valid_state(state));
    }
}

/// Counter automata saturate: 4 consecutive identical outcomes force the
/// corresponding prediction, for every starting state.
#[test]
fn counters_saturate() {
    for automaton in [Automaton::A2, Automaton::A3, Automaton::A4] {
        for start in 0u8..4 {
            for taken in [false, true] {
                let mut state = State::new(start);
                for _ in 0..4 {
                    state = automaton.update(state, taken);
                }
                assert_eq!(
                    automaton.predict(state),
                    taken,
                    "{automaton:?} from state {start} after 4x taken={taken}"
                );
            }
        }
    }
}

/// The history register behaves exactly like a bounded Vec<bool>
/// reference model.
#[test]
fn history_register_matches_reference_model() {
    let mut rng = SmallRng::seed_from_u64(0xA002);
    for _ in 0..CASES {
        let len = rng.next_range(1, 25) as u32;
        let mut hr = HistoryRegister::new(len);
        let mut model: Vec<bool> = vec![false; len as usize];
        for taken in random_outcomes(&mut rng) {
            hr.shift_in(taken);
            model.remove(0);
            model.push(taken);
            let expected: usize = model.iter().fold(0, |acc, &bit| (acc << 1) | usize::from(bit));
            assert_eq!(hr.pattern(), expected);
            for (age, &bit) in model.iter().rev().enumerate() {
                assert_eq!(hr.outcome(age as u32), bit);
            }
        }
    }
}

/// fill() then pattern() round-trips the saturated values.
#[test]
fn history_fill_saturates() {
    for len in 1u32..=24 {
        for taken in [false, true] {
            let mut hr = HistoryRegister::new(len);
            hr.fill(taken);
            let expected = if taken { (1usize << len) - 1 } else { 0 };
            assert_eq!(hr.pattern(), expected);
        }
    }
}

/// Binary trace serialization is lossless for arbitrary event sequences.
#[test]
fn trace_io_round_trips() {
    let mut rng = SmallRng::seed_from_u64(0xA003);
    for _ in 0..CASES {
        let mut trace = Trace::new();
        let mut instret = 0u64;
        let events = rng.next_below(300);
        for _ in 0..events {
            let pc = rng.next_below(1 << 40);
            let target = rng.next_below(1 << 40);
            instret += 1 + (pc % 7);
            if rng.random_bool(0.5) {
                trace.push(TrapRecord::new(pc, instret));
            } else {
                let taken = rng.random_bool(0.5);
                let class = match rng.next_below(4) {
                    0 => BranchClass::Conditional,
                    1 => BranchClass::Unconditional,
                    2 => BranchClass::Call,
                    _ => BranchClass::Return,
                };
                let record = if class.is_conditional() {
                    BranchRecord::conditional(pc, taken, target, instret)
                } else {
                    BranchRecord::unconditional(pc, class, target, instret)
                };
                trace.push(record);
            }
        }
        let decoded = read_trace(&write_trace(&trace)).expect("round trip decodes");
        assert_eq!(trace, decoded);
    }
}

/// The Table 3 notation round-trips for arbitrary two-level
/// configurations.
#[test]
fn scheme_notation_round_trips() {
    let mut rng = SmallRng::seed_from_u64(0xA004);
    for _ in 0..CASES {
        let k = rng.next_range(1, 19) as u32;
        let automaton = random_automaton(&mut rng);
        let entries = 1usize << rng.next_range(4, 12);
        let ways = (1usize << rng.next_below(4)).min(entries);
        let bht = BhtConfig::Cache { entries, ways };
        let config = match rng.next_below(4) {
            0 => SchemeConfig::gag(k).with_automaton(automaton),
            1 => SchemeConfig::pag(k).with_automaton(automaton).with_bht(bht),
            2 => SchemeConfig::pap(k).with_automaton(automaton).with_bht(bht),
            _ => SchemeConfig::pag(k).with_automaton(automaton).with_bht(BhtConfig::Ideal),
        }
        .with_context_switch(rng.random_bool(0.5));
        let text = config.to_string();
        let parsed: SchemeConfig = text.parse().expect("own notation parses");
        assert_eq!(parsed, config, "round trip of {text:?}");
    }
}

/// A zero-delay speculative GAg is observationally identical to the
/// plain GAg for any outcome sequence and any repair policy.
#[test]
fn speculative_gag_with_zero_delay_equals_gag() {
    let mut rng = SmallRng::seed_from_u64(0xA005);
    for case in 0..CASES {
        let repair = if rng.random_bool(0.5) {
            MispredictRepair::Repair
        } else {
            MispredictRepair::Reinitialize
        };
        let mut plain = Gag::new(8, Atm::A2);
        let mut speculative =
            SpeculativeGag::new(8, Atm::A2, HistoryUpdatePolicy::Speculative { delay: 0, repair });
        for (i, taken) in random_outcomes(&mut rng).into_iter().enumerate() {
            let record = BranchRecord::conditional(0x100, taken, 0x40, i as u64 + 1);
            let a = plain.predict(&record);
            let b = speculative.predict(&record);
            assert_eq!(a, b, "prediction diverged at step {i} of case {case}");
            plain.update(&record);
            speculative.update(&record);
        }
    }
}

/// Predict never observes the record's `taken` field: two records that
/// differ only in the outcome get the same prediction.
#[test]
fn predict_is_oblivious_to_outcome() {
    let mut rng = SmallRng::seed_from_u64(0xA006);
    for _ in 0..CASES {
        let k = rng.next_range(1, 15) as u32;
        let mut a = SchemeConfig::pag(k).build().expect("builds");
        let mut b = SchemeConfig::pag(k).build().expect("builds");
        for (i, taken) in random_outcomes(&mut rng).iter().enumerate() {
            let record = BranchRecord::conditional(0x200, *taken, 0x40, i as u64 + 1);
            a.predict(&record);
            a.update(&record);
            b.predict(&record);
            b.update(&record);
        }
        let probe_taken = BranchRecord::conditional(0x200, true, 0x40, 9999);
        let probe_not = BranchRecord::conditional(0x200, false, 0x40, 9999);
        assert_eq!(a.predict(&probe_taken), b.predict(&probe_not));
    }
}
