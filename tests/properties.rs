//! Property-based tests (proptest) over the core data structures and the
//! cross-crate trace formats.

use proptest::prelude::*;

use tlabp::core::automaton::{Automaton, State};
use tlabp::core::config::SchemeConfig;
use tlabp::core::history::HistoryRegister;
use tlabp::core::predictor::BranchPredictor;
use tlabp::core::schemes::Gag;
use tlabp::core::speculative::{HistoryUpdatePolicy, SpeculativeGag};
use tlabp::core::{Automaton as Atm, BhtConfig};
use tlabp::trace::io::{read_trace, write_trace};
use tlabp::trace::{BranchClass, BranchRecord, Trace, TrapRecord};

fn automaton_strategy() -> impl Strategy<Value = Automaton> {
    prop::sample::select(Automaton::ALL.to_vec())
}

fn outcomes_strategy() -> impl Strategy<Value = Vec<bool>> {
    prop::collection::vec(any::<bool>(), 1..200)
}

proptest! {
    /// Automaton updates always stay inside the automaton's state space
    /// and predictions are a pure function of the state.
    #[test]
    fn automata_are_closed_and_deterministic(
        automaton in automaton_strategy(),
        outcomes in outcomes_strategy(),
    ) {
        let mut state = automaton.initial_state();
        for taken in outcomes {
            prop_assert!(automaton.is_valid_state(state));
            prop_assert_eq!(automaton.predict(state), automaton.predict(state));
            state = automaton.update(state, taken);
        }
        prop_assert!(automaton.is_valid_state(state));
    }

    /// Counter automata saturate: k consecutive identical outcomes force
    /// the corresponding prediction, for every starting state.
    #[test]
    fn counters_saturate(
        automaton in prop::sample::select(vec![Automaton::A2, Automaton::A3, Automaton::A4]),
        start in 0u8..4,
        taken in any::<bool>(),
    ) {
        let mut state = State::new(start);
        for _ in 0..4 {
            state = automaton.update(state, taken);
        }
        prop_assert_eq!(automaton.predict(state), taken);
    }

    /// The history register behaves exactly like a bounded Vec<bool>
    /// reference model.
    #[test]
    fn history_register_matches_reference_model(
        len in 1u32..=24,
        outcomes in outcomes_strategy(),
    ) {
        let mut hr = HistoryRegister::new(len);
        let mut model: Vec<bool> = vec![false; len as usize];
        for taken in outcomes {
            hr.shift_in(taken);
            model.remove(0);
            model.push(taken);
            let expected: usize = model
                .iter()
                .fold(0, |acc, &bit| (acc << 1) | usize::from(bit));
            prop_assert_eq!(hr.pattern(), expected);
            for (age, &bit) in model.iter().rev().enumerate() {
                prop_assert_eq!(hr.outcome(age as u32), bit);
            }
        }
    }

    /// fill() then pattern() round-trips the saturated values.
    #[test]
    fn history_fill_saturates(len in 1u32..=24, taken in any::<bool>()) {
        let mut hr = HistoryRegister::new(len);
        hr.fill(taken);
        let expected = if taken { (1usize << len) - 1 } else { 0 };
        prop_assert_eq!(hr.pattern(), expected);
    }

    /// Binary trace serialization is lossless for arbitrary event
    /// sequences.
    #[test]
    fn trace_io_round_trips(
        events in prop::collection::vec(
            (any::<bool>(), 0u64..1 << 40, 0u64..1 << 40, any::<bool>(), 0u8..4),
            0..300,
        ),
    ) {
        let mut trace = Trace::new();
        let mut instret = 0u64;
        for (is_trap, pc, target, taken, class_tag) in events {
            instret += 1 + (pc % 7);
            if is_trap {
                trace.push(TrapRecord::new(pc, instret));
            } else {
                let class = match class_tag {
                    0 => BranchClass::Conditional,
                    1 => BranchClass::Unconditional,
                    2 => BranchClass::Call,
                    _ => BranchClass::Return,
                };
                let record = if class.is_conditional() {
                    BranchRecord::conditional(pc, taken, target, instret)
                } else {
                    BranchRecord::unconditional(pc, class, target, instret)
                };
                trace.push(record);
            }
        }
        let decoded = read_trace(&write_trace(&trace)).expect("round trip decodes");
        prop_assert_eq!(trace, decoded);
    }

    /// The Table 3 notation round-trips for arbitrary two-level
    /// configurations.
    #[test]
    fn scheme_notation_round_trips(
        k in 1u32..=18,
        automaton in automaton_strategy(),
        entries_log in 4u32..=11,
        ways_log in 0u32..=3,
        context_switch in any::<bool>(),
        variant in 0u8..4,
    ) {
        let entries = 1usize << entries_log;
        let ways = (1usize << ways_log).min(entries);
        let bht = BhtConfig::Cache { entries, ways };
        let config = match variant {
            0 => SchemeConfig::gag(k).with_automaton(automaton),
            1 => SchemeConfig::pag(k).with_automaton(automaton).with_bht(bht),
            2 => SchemeConfig::pap(k).with_automaton(automaton).with_bht(bht),
            _ => SchemeConfig::pag(k).with_automaton(automaton).with_bht(BhtConfig::Ideal),
        }
        .with_context_switch(context_switch);
        let text = config.to_string();
        let parsed: SchemeConfig = text.parse().expect("own notation parses");
        prop_assert_eq!(parsed, config);
    }

    /// A zero-delay speculative GAg is observationally identical to the
    /// plain GAg for any outcome sequence and any repair policy.
    #[test]
    fn speculative_gag_with_zero_delay_equals_gag(
        outcomes in outcomes_strategy(),
        repair in prop::sample::select(vec![
            tlabp::core::speculative::MispredictRepair::Repair,
            tlabp::core::speculative::MispredictRepair::Reinitialize,
        ]),
    ) {
        let mut plain = Gag::new(8, Atm::A2);
        let mut speculative = SpeculativeGag::new(
            8,
            Atm::A2,
            HistoryUpdatePolicy::Speculative { delay: 0, repair },
        );
        for (i, taken) in outcomes.into_iter().enumerate() {
            let record = BranchRecord::conditional(0x100, taken, 0x40, i as u64 + 1);
            let a = plain.predict(&record);
            let b = speculative.predict(&record);
            prop_assert_eq!(a, b, "prediction diverged at step {}", i);
            plain.update(&record);
            speculative.update(&record);
        }
    }

    /// Predict never observes the record's `taken` field: two records that
    /// differ only in the outcome get the same prediction.
    #[test]
    fn predict_is_oblivious_to_outcome(
        k in 1u32..=14,
        warmup in outcomes_strategy(),
    ) {
        let mut a = SchemeConfig::pag(k).build().expect("builds");
        let mut b = SchemeConfig::pag(k).build().expect("builds");
        for (i, taken) in warmup.iter().enumerate() {
            let record = BranchRecord::conditional(0x200, *taken, 0x40, i as u64 + 1);
            a.predict(&record);
            a.update(&record);
            b.predict(&record);
            b.update(&record);
        }
        let probe_taken = BranchRecord::conditional(0x200, true, 0x40, 9999);
        let probe_not = BranchRecord::conditional(0x200, false, 0x40, 9999);
        prop_assert_eq!(a.predict(&probe_taken), b.predict(&probe_not));
    }
}
