//! Acceptance tests for the sweep-as-a-service daemon.
//!
//! One in-process server (bound to an ephemeral port) backs all the
//! scenarios the issue's acceptance criteria name: two concurrent
//! clients each receive streamed result sets bit-identical to an
//! in-process `execute` of the same plan; a repeated submission is
//! answered from the memo cache with zero simulation work (proven by a
//! counting predictor builder); and results arrive incrementally in plan
//! order — the first job's frame is readable while a later job is still
//! deliberately blocked.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use tlabp::core::config::SchemeConfig;
use tlabp::core::registry;
use tlabp::service::{Client, ServeConfig, SweepServer};
use tlabp::sim::engine::execute;
use tlabp::sim::plan::{Job, Plan};
use tlabp::sim::{ExecOptions, TraceStore};
use tlabp::workloads::Benchmark;

fn li() -> &'static Benchmark {
    Benchmark::by_name("li").expect("li exists")
}

/// Binds a fresh daemon on an ephemeral port and serves it from a
/// background thread; returns the address to dial.
fn spawn_server(memo_cap: usize) -> String {
    let config = ServeConfig { addr: "127.0.0.1:0".to_owned(), memo_cap, window: None };
    let server = SweepServer::bind(&config, TraceStore::new(), ExecOptions::default())
        .expect("ephemeral port binds");
    let addr = server.local_addr().expect("bound address").to_string();
    std::thread::spawn(move || server.run());
    addr
}

fn connect(addr: &str) -> Client {
    Client::connect_with_retry(addr, Duration::from_secs(10)).expect("daemon reachable")
}

/// Two clients submit concurrently; each streamed response reconstructs
/// a `ResultSet` bit-identical (canonical JSON byte equality, not just
/// `==`) to executing the same plan in-process. A third submission of
/// the same plan is served from the memo cache, again byte-identical.
#[test]
fn concurrent_clients_match_in_process_execution_bit_for_bit() {
    let addr = spawn_server(64);
    let plan_a: Plan = [
        Job::scheme(SchemeConfig::pag(8), li()),
        Job::scheme(SchemeConfig::gag(8), li()),
        Job::scheme(SchemeConfig::btfn(), li()),
    ]
    .into_iter()
    .collect();
    let plan_b: Plan =
        [Job::scheme(SchemeConfig::gag(10), li()), Job::scheme(SchemeConfig::always_taken(), li())]
            .into_iter()
            .collect();

    let expected_a = execute(&plan_a, &TraceStore::new()).to_json_string();
    let expected_b = execute(&plan_b, &TraceStore::new()).to_json_string();

    let threads =
        [(plan_a.clone(), expected_a.clone()), (plan_b, expected_b)].map(|(plan, expected)| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let (results, done) = connect(&addr).execute(&plan).expect("streamed response");
                assert_eq!(done.jobs, plan.len());
                assert!(!done.memo, "first submission of each plan simulates");
                assert_eq!(
                    results.to_json_string(),
                    expected,
                    "streamed results must be bit-identical to in-process execution"
                );
            })
        });
    for thread in threads {
        thread.join().expect("client thread");
    }

    // Same plan again: the daemon replays its memoized frames.
    let (results, done) = connect(&addr).execute(&plan_a).expect("memoized response");
    assert!(done.memo, "repeat submission must hit the memo cache");
    assert_eq!(results.to_json_string(), expected_a, "memoized response must be byte-identical");
}

/// Zero simulation work on a memo hit: a counting registry builder shows
/// the predictor is never even constructed for the repeated plan.
#[test]
fn memoized_responses_do_no_simulation_work() {
    let addr = spawn_server(64);
    let builds = Arc::new(AtomicUsize::new(0));
    let counter = Arc::clone(&builds);
    registry::register("service-test-counting", move || {
        counter.fetch_add(1, Ordering::SeqCst);
        Box::new(tlabp::core::schemes::Btfn::new())
    });
    let plan: Plan =
        [Job::custom("service-test-counting", li()).with_fusion(false)].into_iter().collect();

    let mut client = connect(&addr);
    let (first, done) = client.execute(&plan).expect("first response");
    assert!(!done.memo);
    let builds_after_first = builds.load(Ordering::SeqCst);
    assert!(builds_after_first >= 1, "the first submission simulates for real");

    let (second, done) = client.execute(&plan).expect("second response");
    assert!(done.memo, "identical plan must memo-hit");
    assert_eq!(
        builds.load(Ordering::SeqCst),
        builds_after_first,
        "a memoized response must perform zero simulation work"
    );
    assert_eq!(second, first);

    // A memo cache capped at zero disables replay: every submission
    // simulates.
    let addr_uncached = spawn_server(0);
    let mut client = connect(&addr_uncached);
    let before = builds.load(Ordering::SeqCst);
    let (_, done) = client.execute(&plan).expect("uncached response");
    assert!(!done.memo);
    let (_, done) = client.execute(&plan).expect("second uncached response");
    assert!(!done.memo, "cap 0 disables memoization");
    assert!(builds.load(Ordering::SeqCst) >= before + 2);
}

/// Streaming is incremental and in plan order: with job 1's builder
/// gated shut, the client still reads job 0's result frame; only after
/// the gate opens does job 1 arrive.
#[test]
fn results_stream_incrementally_in_plan_order() {
    let addr = spawn_server(64);
    registry::register("service-test-fast", || Box::new(tlabp::core::schemes::Btfn::new()));
    let release = Arc::new(AtomicBool::new(false));
    let gate = Arc::clone(&release);
    registry::register("service-test-slow", move || {
        while !gate.load(Ordering::SeqCst) {
            std::thread::sleep(Duration::from_millis(1));
        }
        Box::new(tlabp::core::schemes::Btfn::new())
    });
    let plan: Plan = [
        Job::custom("service-test-fast", li()).with_fusion(false),
        Job::custom("service-test-slow", li()).with_fusion(false),
    ]
    .into_iter()
    .collect();

    let mut client = connect(&addr);
    let mut stream = client.submit(&plan).expect("plan submits");
    let first = stream
        .next_outcome()
        .expect("first frame decodes")
        .expect("job 0 streams while job 1 is still gated");
    assert_eq!(first.0, 0);
    assert!(!release.load(Ordering::SeqCst), "job 0 arrived before the gate opened");
    release.store(true, Ordering::SeqCst);
    let second =
        stream.next_outcome().expect("second frame decodes").expect("job 1 streams after release");
    assert_eq!(second.0, 1);
    let done = stream.finish().expect("done frame");
    assert_eq!(done.jobs, 2);
}

/// Malformed submissions are answered with error frames, not dropped
/// connections or dead servers: an unknown custom predictor, a
/// version-skewed plan and undecodable framing each produce a readable
/// error, and the server keeps serving afterwards.
#[test]
fn server_reports_errors_and_survives_them() {
    let addr = spawn_server(64);

    let unknown: Plan = [Job::custom("service-test-unregistered", li())].into_iter().collect();
    let err = connect(&addr).execute(&unknown).expect_err("unknown predictor must error");
    assert!(
        err.to_string().contains("service-test-unregistered"),
        "error names the missing predictor: {err}"
    );

    let skewed = unknown.to_json_string().replacen("\"version\":1", "\"version\":7", 1);
    let err = {
        use std::io::{BufRead, BufReader, Write};
        let mut stream = std::net::TcpStream::connect(&addr).expect("daemon reachable");
        let frame =
            tlabp::service::proto::encode_frame(tlabp::service::proto::FrameKind::Plan, &skewed);
        stream.write_all(frame.as_bytes()).expect("write");
        stream.write_all(b"\n").expect("write");
        let mut line = String::new();
        BufReader::new(stream).read_line(&mut line).expect("read error frame");
        line
    };
    let (kind, payload) =
        tlabp::service::proto::decode_frame(&err).expect("server answers with a frame");
    assert_eq!(kind, tlabp::service::proto::FrameKind::Error);
    assert!(
        tlabp::service::proto::parse_error_payload(payload).contains("version"),
        "error names the version mismatch"
    );

    // The daemon still serves correct plans after all that.
    let plan: Plan = [Job::scheme(SchemeConfig::btfn(), li())].into_iter().collect();
    let expected = execute(&plan, &TraceStore::new()).to_json_string();
    let (results, _) = connect(&addr).execute(&plan).expect("daemon survived the bad clients");
    assert_eq!(results.to_json_string(), expected);
}
