//! Acceptance tests for the sweep-as-a-service daemon.
//!
//! In-process servers (bound to ephemeral ports) back every scenario
//! the issue's acceptance criteria name: concurrent clients each
//! receive streamed result sets bit-identical to an in-process
//! `execute` of the same plan — on the event-driven backend *and* the
//! threaded baseline; repeated submissions are answered from the memo
//! cache with zero simulation work (proven by a counting predictor
//! builder), including across a daemon restart via the persistent memo
//! tier; admission control holds pipelined plans to the per-connection
//! in-flight cap in FIFO order; results arrive incrementally in plan
//! order; a 64-client mixed cold/memo/malformed soak stays
//! bit-identical throughout; and 256 idle connections on the event
//! backend cost no additional threads.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use tlabp::core::config::SchemeConfig;
use tlabp::core::registry;
use tlabp::service::{Client, MemoDirMode, ServeBackend, ServeConfig, SweepServer};
use tlabp::sim::engine::execute;
use tlabp::sim::plan::{Job, Plan};
use tlabp::sim::{ExecOptions, TraceStore};
use tlabp::workloads::Benchmark;

fn li() -> &'static Benchmark {
    Benchmark::by_name("li").expect("li exists")
}

/// A test server config: ephemeral port, persistence off, defaults
/// otherwise.
fn server_config(memo_bytes: usize) -> ServeConfig {
    ServeConfig {
        addr: "127.0.0.1:0".to_owned(),
        memo_bytes,
        window: None,
        inflight: 4,
        memo_dir: MemoDirMode::Off,
        memo_disk_bytes: None,
        backend: ServeBackend::Auto,
    }
}

/// Binds a fresh daemon and serves it from a background thread; returns
/// the address to dial.
fn spawn_server(config: ServeConfig) -> String {
    let server = SweepServer::bind(&config, TraceStore::new(), ExecOptions::default())
        .expect("ephemeral port binds");
    let addr = server.local_addr().expect("bound address").to_string();
    std::thread::spawn(move || server.run());
    addr
}

fn connect(addr: &str) -> Client {
    Client::connect_with_retry(addr, Duration::from_secs(10)).expect("daemon reachable")
}

/// A batch of distinct plans pipelined on one connection comes back in
/// submission order, every response bit-identical to an in-process
/// execution, on both backends. The batch is larger than the in-flight
/// cap, so the tail of it exercises the FIFO queue.
#[test]
fn pipelined_submissions_return_responses_in_submission_order() {
    let plans: Vec<Plan> = (6..=11)
        .map(|bits| std::iter::once(Job::scheme(SchemeConfig::pag(bits), li())).collect())
        .collect();
    let store = TraceStore::new();
    let expected: Vec<String> =
        plans.iter().map(|plan| execute(plan, &store).to_json_string()).collect();

    for backend in [ServeBackend::Auto, ServeBackend::Threaded] {
        let mut config = server_config(64 << 20);
        config.backend = backend;
        config.inflight = 2;
        let addr = spawn_server(config);
        let mut client = connect(&addr);
        let responses = client.execute_pipelined(&plans).expect("pipelined batch completes");
        assert_eq!(responses.len(), plans.len());
        for (index, ((results, done), want)) in responses.iter().zip(&expected).enumerate() {
            assert!(!done.memo, "first sight of plan {index} must simulate");
            assert_eq!(
                &results.to_json_string(),
                want,
                "pipelined response {index} diverged from in-process execution ({backend:?})"
            );
        }
    }
}

/// Two clients submit concurrently; each streamed response reconstructs
/// a `ResultSet` bit-identical (canonical JSON byte equality, not just
/// `==`) to executing the same plan in-process. A third submission of
/// the same plan is served from the memo cache, again byte-identical.
/// Exercised on both the event-driven backend and the threaded
/// baseline — their bytes must be indistinguishable.
#[test]
fn concurrent_clients_match_in_process_execution_bit_for_bit() {
    let plan_a: Plan = [
        Job::scheme(SchemeConfig::pag(8), li()),
        Job::scheme(SchemeConfig::gag(8), li()),
        Job::scheme(SchemeConfig::btfn(), li()),
    ]
    .into_iter()
    .collect();
    let plan_b: Plan =
        [Job::scheme(SchemeConfig::gag(10), li()), Job::scheme(SchemeConfig::always_taken(), li())]
            .into_iter()
            .collect();

    let store = TraceStore::new();
    let expected_a = execute(&plan_a, &store).to_json_string();
    let expected_b = execute(&plan_b, &store).to_json_string();

    for backend in [ServeBackend::Auto, ServeBackend::Threaded] {
        let mut config = server_config(64 << 20);
        config.backend = backend;
        let addr = spawn_server(config);
        let threads = [(plan_a.clone(), expected_a.clone()), (plan_b.clone(), expected_b.clone())]
            .map(|(plan, expected)| {
                let addr = addr.clone();
                std::thread::spawn(move || {
                    let (results, done) = connect(&addr).execute(&plan).expect("streamed response");
                    assert_eq!(done.jobs, plan.len());
                    assert!(!done.memo, "first submission of each plan simulates");
                    assert_eq!(
                        results.to_json_string(),
                        expected,
                        "streamed results must be bit-identical to in-process execution \
                         ({backend:?})"
                    );
                })
            });
        for thread in threads {
            thread.join().expect("client thread");
        }

        // Same plan again: the daemon replays its memoized frames.
        let (results, done) = connect(&addr).execute(&plan_a).expect("memoized response");
        assert!(done.memo, "repeat submission must hit the memo cache ({backend:?})");
        assert_eq!(
            results.to_json_string(),
            expected_a,
            "memoized response must be byte-identical ({backend:?})"
        );
    }
}

/// Zero simulation work on a memo hit: a counting registry builder shows
/// the predictor is never even constructed for the repeated plan.
#[test]
fn memoized_responses_do_no_simulation_work() {
    let addr = spawn_server(server_config(64 << 20));
    let builds = Arc::new(AtomicUsize::new(0));
    let counter = Arc::clone(&builds);
    registry::register("service-test-counting", move || {
        counter.fetch_add(1, Ordering::SeqCst);
        Box::new(tlabp::core::schemes::Btfn::new())
    });
    let plan: Plan =
        [Job::custom("service-test-counting", li()).with_fusion(false)].into_iter().collect();

    let mut client = connect(&addr);
    let (first, done) = client.execute(&plan).expect("first response");
    assert!(!done.memo);
    let builds_after_first = builds.load(Ordering::SeqCst);
    assert!(builds_after_first >= 1, "the first submission simulates for real");

    let (second, done) = client.execute(&plan).expect("second response");
    assert!(done.memo, "identical plan must memo-hit");
    assert_eq!(
        builds.load(Ordering::SeqCst),
        builds_after_first,
        "a memoized response must perform zero simulation work"
    );
    assert_eq!(second, first);

    // A memo budget of zero bytes disables replay: every submission
    // simulates.
    let addr_uncached = spawn_server(server_config(0));
    let mut client = connect(&addr_uncached);
    let before = builds.load(Ordering::SeqCst);
    let (_, done) = client.execute(&plan).expect("uncached response");
    assert!(!done.memo);
    let (_, done) = client.execute(&plan).expect("second uncached response");
    assert!(!done.memo, "a zero-byte memo budget disables memoization");
    assert!(builds.load(Ordering::SeqCst) >= before + 2);
}

/// A daemon restarted over the same memo directory serves a
/// previously-seen plan from the persistent tier: byte-identical
/// response, `done.memo == true`, and zero simulation work — proven by
/// a counting builder that is never invoked by the second server.
#[test]
fn restarted_daemon_replays_persisted_memo_with_zero_simulation_work() {
    let dir = std::env::temp_dir().join(format!("tlabp-service-restart-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let builds = Arc::new(AtomicUsize::new(0));
    let counter = Arc::clone(&builds);
    registry::register("service-restart-counting", move || {
        counter.fetch_add(1, Ordering::SeqCst);
        Box::new(tlabp::core::schemes::Btfn::new())
    });
    let plan: Plan =
        [Job::custom("service-restart-counting", li()).with_fusion(false)].into_iter().collect();

    let mut config = server_config(1 << 20);
    config.memo_dir = MemoDirMode::Dir(dir.clone());
    let addr_a = spawn_server(config.clone());
    let (first, done) = connect(&addr_a).execute(&plan).expect("cold response");
    assert!(!done.memo);
    let builds_after = builds.load(Ordering::SeqCst);
    assert!(builds_after >= 1, "the cold submission simulates");
    let artifacts =
        std::fs::read_dir(&dir).map(|entries| entries.filter_map(Result::ok).count()).unwrap_or(0);
    assert!(artifacts >= 1, "the response must be persisted as a memo artifact");

    // A brand-new server over the same directory — fresh in-memory LRU,
    // fresh TraceStore — hydrates the artifact and answers from it.
    let addr_b = spawn_server(config);
    let (second, done) = connect(&addr_b).execute(&plan).expect("hydrated response");
    assert!(done.memo, "the restarted daemon must answer from the persistent memo tier");
    assert_eq!(
        builds.load(Ordering::SeqCst),
        builds_after,
        "zero simulation work across the restart"
    );
    assert_eq!(
        second.to_json_string(),
        first.to_json_string(),
        "the replayed response must be byte-identical across the restart"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Admission control: with `inflight = 1`, the second of two pipelined
/// plans on one connection is not even *started* (its builder never
/// runs) until the first completes, and the responses come back in
/// request order.
#[test]
fn admission_holds_pipelined_plans_to_the_in_flight_cap_in_fifo_order() {
    use std::io::{BufRead, BufReader, Write};
    use tlabp::service::proto::{decode_frame, encode_frame, FrameKind};

    let release = Arc::new(AtomicBool::new(false));
    let gate = Arc::clone(&release);
    registry::register("service-admission-gated", move || {
        while !gate.load(Ordering::SeqCst) {
            std::thread::sleep(Duration::from_millis(1));
        }
        Box::new(tlabp::core::schemes::Btfn::new())
    });
    let builds = Arc::new(AtomicUsize::new(0));
    let counter = Arc::clone(&builds);
    registry::register("service-admission-counting", move || {
        counter.fetch_add(1, Ordering::SeqCst);
        Box::new(tlabp::core::schemes::Btfn::new())
    });

    // Memoization off so both plans really execute.
    let mut config = server_config(0);
    config.inflight = 1;
    let addr = spawn_server(config);

    let gated: Plan =
        [Job::custom("service-admission-gated", li()).with_fusion(false)].into_iter().collect();
    let counting: Plan =
        [Job::custom("service-admission-counting", li()).with_fusion(false)].into_iter().collect();

    let mut stream = std::net::TcpStream::connect(&addr).expect("daemon reachable");
    for plan in [&gated, &counting] {
        stream
            .write_all(encode_frame(FrameKind::Plan, &plan.to_json_string()).as_bytes())
            .expect("write plan frame");
        stream.write_all(b"\n").expect("write newline");
    }
    stream.flush().expect("flush");

    // While plan 1 sits in its gated builder, plan 2 must not have been
    // admitted: its builder has run zero times.
    std::thread::sleep(Duration::from_millis(300));
    assert_eq!(
        builds.load(Ordering::SeqCst),
        0,
        "with inflight=1 the second pipelined plan must wait for the first"
    );
    release.store(true, Ordering::SeqCst);

    let reader = BufReader::new(stream);
    let mut kinds = Vec::new();
    for line in reader.lines() {
        let line = line.expect("response line");
        if line.is_empty() {
            continue;
        }
        let (kind, _) = decode_frame(&line).expect("response frame decodes");
        kinds.push(kind);
        if kinds.iter().filter(|&&kind| kind == FrameKind::Done).count() == 2 {
            break;
        }
    }
    assert_eq!(
        kinds,
        [FrameKind::Result, FrameKind::Done, FrameKind::Result, FrameKind::Done],
        "responses leave strictly in request order"
    );
    assert_eq!(builds.load(Ordering::SeqCst), 1, "plan 2 ran after plan 1 finished");
}

/// Streaming is incremental and in plan order: with job 1's builder
/// gated shut, the client still reads job 0's result frame; only after
/// the gate opens does job 1 arrive.
#[test]
fn results_stream_incrementally_in_plan_order() {
    let addr = spawn_server(server_config(64 << 20));
    registry::register("service-test-fast", || Box::new(tlabp::core::schemes::Btfn::new()));
    let release = Arc::new(AtomicBool::new(false));
    let gate = Arc::clone(&release);
    registry::register("service-test-slow", move || {
        while !gate.load(Ordering::SeqCst) {
            std::thread::sleep(Duration::from_millis(1));
        }
        Box::new(tlabp::core::schemes::Btfn::new())
    });
    let plan: Plan = [
        Job::custom("service-test-fast", li()).with_fusion(false),
        Job::custom("service-test-slow", li()).with_fusion(false),
    ]
    .into_iter()
    .collect();

    let mut client = connect(&addr);
    let mut stream = client.submit(&plan).expect("plan submits");
    let first = stream
        .next_outcome()
        .expect("first frame decodes")
        .expect("job 0 streams while job 1 is still gated");
    assert_eq!(first.0, 0);
    assert!(!release.load(Ordering::SeqCst), "job 0 arrived before the gate opened");
    release.store(true, Ordering::SeqCst);
    let second =
        stream.next_outcome().expect("second frame decodes").expect("job 1 streams after release");
    assert_eq!(second.0, 1);
    let done = stream.finish().expect("done frame");
    assert_eq!(done.jobs, 2);
}

/// Malformed submissions are answered with error frames, not dropped
/// connections or dead servers: an unknown custom predictor, a
/// version-skewed plan and undecodable framing each produce a readable
/// error, and the server keeps serving afterwards.
#[test]
fn server_reports_errors_and_survives_them() {
    let addr = spawn_server(server_config(64 << 20));

    let unknown: Plan = [Job::custom("service-test-unregistered", li())].into_iter().collect();
    let err = connect(&addr).execute(&unknown).expect_err("unknown predictor must error");
    assert!(
        err.to_string().contains("service-test-unregistered"),
        "error names the missing predictor: {err}"
    );

    let skewed = unknown.to_json_string().replacen("\"version\":1", "\"version\":7", 1);
    let err = {
        use std::io::{BufRead, BufReader, Write};
        let mut stream = std::net::TcpStream::connect(&addr).expect("daemon reachable");
        let frame =
            tlabp::service::proto::encode_frame(tlabp::service::proto::FrameKind::Plan, &skewed);
        stream.write_all(frame.as_bytes()).expect("write");
        stream.write_all(b"\n").expect("write");
        let mut line = String::new();
        BufReader::new(stream).read_line(&mut line).expect("read error frame");
        line
    };
    let (kind, payload) =
        tlabp::service::proto::decode_frame(&err).expect("server answers with a frame");
    assert_eq!(kind, tlabp::service::proto::FrameKind::Error);
    assert!(
        tlabp::service::proto::parse_error_payload(payload).contains("version"),
        "error names the version mismatch"
    );

    // The daemon still serves correct plans after all that.
    let plan: Plan = [Job::scheme(SchemeConfig::btfn(), li())].into_iter().collect();
    let expected = execute(&plan, &TraceStore::new()).to_json_string();
    let (results, _) = connect(&addr).execute(&plan).expect("daemon survived the bad clients");
    assert_eq!(results.to_json_string(), expected);
}

/// Concurrency soak: 64 clients hammer one daemon with a mix of cold
/// plans, repeated (memo-hitting) plans, and malformed garbage. Every
/// well-formed response must stay bit-identical to in-process
/// execution; every malformed client gets an error frame.
#[test]
fn soak_mixed_cold_memo_and_malformed_clients_stay_bit_identical() {
    let addr = spawn_server(server_config(64 << 20));
    let variants: Vec<Plan> =
        [SchemeConfig::pag(6), SchemeConfig::pag(7), SchemeConfig::gag(6), SchemeConfig::btfn()]
            .into_iter()
            .map(|config| [Job::scheme(config, li())].into_iter().collect())
            .collect();
    let store = TraceStore::new();
    let expected: Arc<Vec<String>> =
        Arc::new(variants.iter().map(|plan| execute(plan, &store).to_json_string()).collect());
    let variants = Arc::new(variants);

    let mut clients = Vec::new();
    for n in 0..64usize {
        let addr = addr.clone();
        if n % 8 == 7 {
            // Malformed client: a corrupt frame earns an error frame
            // (and a closed connection), never a dead server.
            clients.push(std::thread::spawn(move || {
                use std::io::{BufRead, BufReader, Write};
                let mut stream = std::net::TcpStream::connect(&addr).expect("daemon reachable");
                stream
                    .write_all(b"TLBS 1 plan 4 hash deadbeefdeadbeef\n")
                    .expect("write corrupt frame");
                let mut line = String::new();
                BufReader::new(stream).read_line(&mut line).expect("read error frame");
                let (kind, _) = tlabp::service::proto::decode_frame(&line)
                    .expect("the reply to garbage is still a well-formed frame");
                assert_eq!(kind, tlabp::service::proto::FrameKind::Error);
            }));
        } else {
            let variants = Arc::clone(&variants);
            let expected = Arc::clone(&expected);
            clients.push(std::thread::spawn(move || {
                let i = n % variants.len();
                // Two rounds: the first may be cold or a memo hit (some
                // sibling already computed it), the second is a likely
                // hit — all must be byte-identical.
                for _ in 0..2 {
                    let (results, _) =
                        connect(&addr).execute(&variants[i]).expect("streamed response");
                    assert_eq!(
                        results.to_json_string(),
                        expected[i],
                        "client {n} received non-identical bytes"
                    );
                }
            }));
        }
    }
    for client in clients {
        client.join().expect("soak client");
    }
}

/// The event backend's defining property: 256 idle connections cost no
/// additional threads (the threaded baseline would spawn 256). Gated to
/// Linux for `/proc/self/status`.
#[cfg(target_os = "linux")]
#[test]
fn event_backend_serves_hundreds_of_connections_on_fixed_threads() {
    fn thread_count() -> usize {
        std::fs::read_to_string("/proc/self/status")
            .expect("/proc/self/status readable")
            .lines()
            .find_map(|line| line.strip_prefix("Threads:"))
            .expect("Threads: line present")
            .trim()
            .parse()
            .expect("thread count parses")
    }

    let addr = spawn_server(server_config(64 << 20));
    let plan: Plan = [Job::scheme(SchemeConfig::btfn(), li())].into_iter().collect();
    // Warm everything thread-shaped first: the event loop, the executor
    // pool, the sweep pool, the trace.
    connect(&addr).execute(&plan).expect("warm response");
    let before = thread_count();

    let idle: Vec<std::net::TcpStream> =
        (0..256).map(|_| std::net::TcpStream::connect(&addr).expect("connects")).collect();
    // The daemon still answers while the idle crowd sits connected.
    let (_, done) = connect(&addr).execute(&plan).expect("served among idle connections");
    assert!(done.memo, "the warmed plan replays from the memo cache");
    let after = thread_count();
    assert!(
        after.saturating_sub(before) < 64,
        "256 idle connections must not spawn threads ({before} -> {after})"
    );
    drop(idle);
}
