//! Satellite: sweep results are independent of the worker pool size.
//!
//! The sweep engine executes cells work-stealing style, so the order in
//! which cells *finish* depends on thread scheduling. The reassembly
//! step must erase that: a sweep run on one worker and the same sweep
//! run on many workers have to produce identical `Vec<SuiteResult>`s,
//! in the submitted configuration order.

use tlabp::core::automaton::Automaton;
use tlabp::core::config::SchemeConfig;
use tlabp::sim::runner::SimConfig;
use tlabp::sim::sweep::run_sweep_on;
use tlabp::sim::{SweepPool, TraceStore};

fn sweep_configs() -> Vec<SchemeConfig> {
    vec![
        SchemeConfig::pag(8),
        SchemeConfig::gag(10),
        SchemeConfig::pag(8).with_context_switch(true),
        SchemeConfig::profiling(),
        SchemeConfig::btb(Automaton::A2),
    ]
}

#[test]
fn sweep_results_are_identical_across_pool_sizes() {
    let configs = sweep_configs();
    let sim = SimConfig::no_context_switch();
    // Separate stores: each run generates (or reuses) its own traces, so
    // agreement also covers trace-generation determinism.
    let serial_pool = SweepPool::new(1);
    let serial = run_sweep_on(&serial_pool, &configs, &TraceStore::new(), &sim);
    let parallel_pool = SweepPool::new(8);
    let parallel = run_sweep_on(&parallel_pool, &configs, &TraceStore::new(), &sim);

    assert_eq!(serial.len(), configs.len());
    assert_eq!(serial, parallel, "pool size changed the sweep output");
    // Order matches the submitted configuration order.
    for (config, result) in configs.iter().zip(&serial) {
        assert_eq!(result.scheme, config.to_string());
    }
}

#[test]
fn repeated_sweeps_on_one_store_are_stable() {
    let configs = vec![SchemeConfig::pag(8), SchemeConfig::gag(10)];
    let sim = SimConfig::no_context_switch();
    let store = TraceStore::new();
    let pool = SweepPool::new(4);
    let first = run_sweep_on(&pool, &configs, &store, &sim);
    let second = run_sweep_on(&pool, &configs, &store, &sim);
    assert_eq!(first, second);
}

/// The same independence holds for a heterogeneous plan: replay-lowered
/// scheme jobs (sharing materialized pattern streams), replay-disabled
/// jobs (fused trace passes), context-switch jobs, registry-built custom
/// jobs, fusion-disabled jobs, reference-path jobs and instrumented
/// metric jobs mixed in one batch must come back bit-identical whether
/// one worker or eight executed them.
#[test]
fn engine_results_are_identical_across_pool_sizes() {
    use tlabp::core::registry;
    use tlabp::core::BhtConfig;
    use tlabp::sim::engine::execute_on;
    use tlabp::sim::plan::{Job, MetricSet, Plan, TargetCacheSpec};
    use tlabp::workloads::Benchmark;

    registry::register("determinism-dyn-pag8", || {
        Box::new(SchemeConfig::pag(8).build_any().expect("builds"))
    });
    let plan: Plan = Benchmark::ALL
        .iter()
        .flat_map(|benchmark| {
            [
                // Replay-lowered: the three scheme jobs share the
                // benchmark's pattern streams; the custom escape hatch
                // fuses over the interned stream instead.
                Job::scheme(SchemeConfig::pag(8), benchmark),
                Job::scheme(SchemeConfig::pag(12).with_bht(BhtConfig::Ideal), benchmark),
                Job::scheme(SchemeConfig::pap(6), benchmark),
                Job::custom("determinism-dyn-pag8", benchmark),
                // Replay opt-out: same scheme job on the fused path.
                Job::scheme(SchemeConfig::pag(8), benchmark).with_replay(false),
                // Fusion-ineligible fallbacks: context switches, an
                // explicit opt-out, the reference path, and instrumented
                // metrics.
                Job::scheme(SchemeConfig::gag(10).with_context_switch(true), benchmark),
                Job::scheme(SchemeConfig::pap(6), benchmark).with_fusion(false),
                Job::scheme(SchemeConfig::gag(10), benchmark).with_reference_path(true),
                Job::scheme(SchemeConfig::pag(12), benchmark)
                    .with_metrics(MetricSet { miss_breakdown: true, fetch: None }),
                Job::scheme(SchemeConfig::pag(12), benchmark).with_metrics(MetricSet {
                    miss_breakdown: false,
                    fetch: Some(TargetCacheSpec::PAPER_DEFAULT),
                }),
            ]
        })
        .collect();

    let serial_pool = SweepPool::new(1);
    let serial = execute_on(&serial_pool, &plan, &TraceStore::new());
    let parallel_pool = SweepPool::new(8);
    let parallel = execute_on(&parallel_pool, &plan, &TraceStore::new());
    assert_eq!(serial.len(), plan.len());
    assert_eq!(serial, parallel, "pool size changed the engine output");
}

/// Tentpole guard: the prefetch barrier is a scheduling change only.
/// Executing a plan against *cold* stores — every trace generated,
/// derived (and possibly disk-hydrated) during the run itself — must
/// produce bit-identical `ResultSet`s whether ingestion happens lazily
/// under one worker or fanned across eight workers by the prefetch pass.
/// Stores come from `TraceStore::from_env()`, so the default run proves
/// it memory-only and the CI warm-cache step (`TLABP_TRACE_DIR` set)
/// proves it through the disk tier.
#[test]
fn cold_store_prefetch_matches_lazy_across_pool_sizes() {
    use tlabp::core::BhtConfig;
    use tlabp::sim::engine::{execute_with, ExecOptions};
    use tlabp::sim::plan::{Job, Plan};
    use tlabp::workloads::Benchmark;

    // Replay-lowered, fused and full-trace jobs in one plan, so every
    // ingestion product (trace, packed, interned, pattern streams) is in
    // play on the cold path.
    let plan: Plan = [Benchmark::by_name("li").unwrap(), Benchmark::by_name("eqntott").unwrap()]
        .iter()
        .flat_map(|&benchmark| {
            [
                Job::scheme(SchemeConfig::pag(8), benchmark),
                Job::scheme(SchemeConfig::pag(8).with_bht(BhtConfig::Ideal), benchmark),
                Job::scheme(SchemeConfig::gag(10), benchmark).with_replay(false),
                Job::scheme(SchemeConfig::pag(8).with_context_switch(true), benchmark),
            ]
        })
        .collect();

    let lazy_pool = SweepPool::new(1);
    let lazy = execute_with(
        &lazy_pool,
        &plan,
        &TraceStore::from_env(),
        ExecOptions { prefetch: false, ..ExecOptions::default() },
    );
    let prefetch_pool = SweepPool::new(8);
    let prefetched = execute_with(
        &prefetch_pool,
        &plan,
        &TraceStore::from_env(),
        ExecOptions { prefetch: true, ..ExecOptions::default() },
    );
    assert_eq!(lazy.len(), plan.len());
    assert_eq!(lazy, prefetched, "prefetch changed the engine output");
}

/// Satellite: forcing any `TLABP_SIMD` kernel body through
/// `ExecOptions::simd` is a throughput knob only — every body must
/// produce bit-identical `ResultSet`s, across pool sizes, on a plan
/// mixing replay-lowered width/automaton variants with non-replay jobs.
#[test]
fn forced_simd_paths_are_bit_identical_across_pool_sizes() {
    use tlabp::core::SimdMode;
    use tlabp::sim::engine::{execute_with, ExecOptions};
    use tlabp::sim::plan::{Job, Plan};
    use tlabp::workloads::Benchmark;

    let plan: Plan = [Benchmark::by_name("li").unwrap(), Benchmark::by_name("eqntott").unwrap()]
        .iter()
        .flat_map(|&benchmark| {
            [
                Job::scheme(SchemeConfig::gag(8), benchmark),
                Job::scheme(SchemeConfig::gag(12), benchmark),
                Job::scheme(SchemeConfig::pag(8), benchmark),
                Job::scheme(SchemeConfig::pag(12), benchmark),
                Job::scheme(SchemeConfig::pap(8), benchmark),
                Job::scheme(SchemeConfig::pag(12), benchmark).with_replay(false),
                Job::scheme(SchemeConfig::btfn(), benchmark),
            ]
        })
        .collect();

    let store = TraceStore::new();
    let baseline_pool = SweepPool::new(1);
    let baseline = execute_with(
        &baseline_pool,
        &plan,
        &store,
        ExecOptions { simd: SimdMode::Scalar, ..ExecOptions::default() },
    );
    assert_eq!(baseline.len(), plan.len());
    for simd in [SimdMode::Auto, SimdMode::Swar, SimdMode::Sse2, SimdMode::Avx2, SimdMode::Avx512] {
        for workers in [1, 8] {
            let pool = SweepPool::new(workers);
            let run =
                execute_with(&pool, &plan, &store, ExecOptions { simd, ..ExecOptions::default() });
            assert_eq!(baseline, run, "{simd:?} on {workers} workers diverged from scalar");
        }
    }
}

/// Satellite: crossing a forced kernel with a pool size and a forced
/// intra-batch split must still be a scheduling/throughput change only.
/// A wide replay batch (many members per stream) is split into
/// word-granular sub-batches scattered across workers; the merged
/// `ResultSet` has to stay bit-identical to the scalar, unsplit,
/// single-worker run for every (kernel, pool, split) combination.
#[test]
fn forced_kernel_pool_and_split_cross_is_bit_identical() {
    use tlabp::core::SimdMode;
    use tlabp::sim::engine::{execute_with, ExecOptions, SplitPolicy};
    use tlabp::sim::plan::{Job, Plan};
    use tlabp::workloads::Benchmark;

    let benchmark = Benchmark::by_name("li").unwrap();
    // 48 same-shape jobs cycling the automata: one wide replay batch
    // (3 transposed words per width group) so every split point lands
    // on a 16-member word boundary with room to scatter.
    let plan: Plan = (0..48)
        .map(|i| {
            Job::scheme(
                SchemeConfig::pag(10).with_automaton(Automaton::ALL[i % Automaton::ALL.len()]),
                benchmark,
            )
        })
        .collect();

    let store = TraceStore::new();
    let baseline_pool = SweepPool::new(1);
    let baseline = execute_with(
        &baseline_pool,
        &plan,
        &store,
        ExecOptions { simd: SimdMode::Scalar, split: SplitPolicy::Off, ..ExecOptions::default() },
    );
    assert_eq!(baseline.len(), plan.len());
    for simd in [SimdMode::Swar, SimdMode::Avx2, SimdMode::Avx512] {
        for workers in [1, 2, 4] {
            for split in [SplitPolicy::Off, SplitPolicy::Auto, SplitPolicy::Parts(3)] {
                let pool = SweepPool::new(workers);
                let run = execute_with(
                    &pool,
                    &plan,
                    &store,
                    ExecOptions { simd, split, ..ExecOptions::default() },
                );
                assert_eq!(
                    baseline, run,
                    "{simd:?} x {workers} workers x {split:?} diverged from scalar/unsplit"
                );
            }
        }
    }
}
